// Package obs is the execution-observability layer: a cheap
// per-statement Collector threaded alongside the governance Governor
// through every operator (scans, expansions, path searches, joins,
// filters, CONSTRUCT/SELECT) and the rpq kernels.
//
// Design constraints, in order:
//
//  1. Zero cost when absent. Every recording entry point is nil-safe
//     on a nil *Collector / nil *ActiveSpan, so uninstrumented
//     evaluation pays one pointer test per operator, not per row.
//  2. No per-row work. Spans record rows in/out as table lengths at
//     operator boundaries; rpq kernels count steps locally and flush
//     once at kernel end. This also makes row counts deterministic
//     across parallelism levels — a chunked parallel scan and a
//     sequential scan produce the same table, hence the same counts.
//  3. Race-safe. The evaluator runs operators on worker goroutines
//     and engines are used from tests concurrently; all counters are
//     atomic and the span list is mutex-guarded.
//
// A Collector accumulates; Mark/Since carve out the slice belonging
// to one statement so a long-lived sink Collector (WithCollector) can
// span many queries while the engine still reports per-statement
// stats to its Registry.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Op identifies an operator class. The set mirrors the EXPLAIN tree:
// one value per line kind the plan printer can emit.
type Op uint8

const (
	// OpStatement wraps a whole statement evaluation.
	OpStatement Op = iota
	// OpScan is the node scan seeding a pattern chain.
	OpScan
	// OpExpand is one adjacency expansion step (edge pattern).
	OpExpand
	// OpPath is one path-pattern step (reachability / k-shortest /
	// ALL-paths search seeded from the frontier table).
	OpPath
	// OpFilter is an eager pushed-down conjunct application.
	OpFilter
	// OpResidual is the residual WHERE filter (subqueries et al.).
	OpResidual
	// OpJoin is the conjunct-pattern fold of one MATCH.
	OpJoin
	// OpLeftJoin is one OPTIONAL block's left outer join.
	OpLeftJoin
	// OpConstruct is the CONSTRUCT clause building the result graph.
	OpConstruct
	// OpSelect is the SELECT clause building the result table.
	OpSelect
	// OpShortest is a k-shortest product-automaton kernel run.
	OpShortest
	// OpReach is a reachability-sweep kernel run.
	OpReach
	// OpAllPaths is an ALL-paths enumeration kernel run.
	OpAllPaths

	numOps = int(OpAllPaths) + 1
)

var opNames = [numOps]string{
	"statement", "scan", "expand", "path", "filter", "residual",
	"join", "left-join", "construct", "select",
	"shortest", "reach", "all-paths",
}

func (o Op) String() string {
	if int(o) < numOps {
		return opNames[o]
	}
	return "op?"
}

// Span is one finished operator execution. Rows are table lengths at
// the operator boundary; Pops/Arrivals are kernel frontier counters
// (pops from the search frontier, pushes onto it).
type Span struct {
	Op    Op
	Label string // plan-line text; empty unless the collector is verbose
	Depth int32  // 0 for top-level operators, >0 inside subqueries

	RowsIn   int64
	RowsOut  int64
	Pops     int64
	Arrivals int64

	Indexed bool // scan used the label index (vs. full node scan)
	Err     bool

	Elapsed time.Duration
}

// TraceHandler receives operator span events. Implementations must be
// safe for concurrent use: operators run on worker goroutines, so
// SpanStart/SpanEnd for different spans may interleave and event
// order between sibling operators is not deterministic. The engine
// never retains the Span past the SpanEnd call.
type TraceHandler interface {
	// SpanStart fires when an operator begins. The label is not yet
	// known (it is set during execution); depth>0 means a subquery.
	SpanStart(op Op, depth int)
	// SpanEnd fires with the completed span.
	SpanEnd(span Span)
}

// Collector accumulates spans and cache/budget counters for one or
// more statements. The zero value is NOT ready; use NewCollector. A
// nil *Collector is a valid no-op receiver for Start and the event
// methods.
type Collector struct {
	mu      sync.Mutex
	spans   []Span
	handler TraceHandler

	verbose atomic.Bool  // record labels (EXPLAIN ANALYZE / tracing)
	depth   atomic.Int32 // subquery nesting, muting labels below 0

	nfaHits      atomic.Int64
	nfaMisses    atomic.Int64
	csrReuses    atomic.Int64
	csrBuilds    atomic.Int64
	snapFull     atomic.Int64
	snapDeltas   atomic.Int64
	snapFalls    atomic.Int64
	snapDeltaOps atomic.Int64
	snapShared   atomic.Int64
	snapCopied   atomic.Int64
	frontierUsed atomic.Int64
	resultsUsed  atomic.Int64
	propColHits  atomic.Int64
	propColFalls atomic.Int64

	planHits      atomic.Int64
	planMisses    atomic.Int64
	planCompileNS atomic.Int64
}

// NewCollector returns a collector that records span labels (verbose
// mode), suitable for EXPLAIN ANALYZE and for user-held collectors.
func NewCollector() *Collector {
	c := &Collector{}
	c.verbose.Store(true)
	return c
}

// Reset clears all spans and counters and installs h as the trace
// handler. Label recording is enabled only when a handler is present;
// the metrics-only path skips label formatting entirely. Reset is how
// the evaluator reuses one scratch collector across statements.
func (c *Collector) Reset(h TraceHandler) {
	c.mu.Lock()
	c.spans = c.spans[:0]
	c.handler = h
	c.mu.Unlock()
	c.verbose.Store(h != nil)
	c.depth.Store(0)
	c.nfaHits.Store(0)
	c.nfaMisses.Store(0)
	c.csrReuses.Store(0)
	c.csrBuilds.Store(0)
	c.snapFull.Store(0)
	c.snapDeltas.Store(0)
	c.snapFalls.Store(0)
	c.snapDeltaOps.Store(0)
	c.snapShared.Store(0)
	c.snapCopied.Store(0)
	c.frontierUsed.Store(0)
	c.resultsUsed.Store(0)
	c.propColHits.Store(0)
	c.propColFalls.Store(0)
	c.planHits.Store(0)
	c.planMisses.Store(0)
	c.planCompileNS.Store(0)
}

// SetHandler installs (or clears) the trace handler without touching
// recorded spans or counters.
func (c *Collector) SetHandler(h TraceHandler) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.handler = h
	c.mu.Unlock()
}

// EnterSub marks entry into a subquery (EXISTS, pattern predicate, ON
// subquery, path-view materialisation). Spans recorded inside carry
// Depth>0 so plan annotation and the registry count only top-level
// operators, while trace handlers still see the full tree.
func (c *Collector) EnterSub() {
	if c == nil {
		return
	}
	c.depth.Add(1)
}

// ExitSub closes the innermost subquery scope.
func (c *Collector) ExitSub() {
	if c == nil {
		return
	}
	c.depth.Add(-1)
}

// NFAEvent records a regex→NFA compilation cache probe.
func (c *Collector) NFAEvent(hit bool) {
	if c == nil {
		return
	}
	if hit {
		c.nfaHits.Add(1)
	} else {
		c.nfaMisses.Add(1)
	}
}

// PlanCacheEvent records one plan-cache probe for the executing
// statement. compile is the entry's compilation time: the cost a hit
// avoided, or the cost a miss just paid.
func (c *Collector) PlanCacheEvent(hit bool, compile time.Duration) {
	if c == nil {
		return
	}
	if hit {
		c.planHits.Add(1)
	} else {
		c.planMisses.Add(1)
	}
	c.planCompileNS.Add(int64(compile))
}

// CSREvent records a CSR snapshot probe: hit means the cached
// generation was reused, miss means the snapshot was (re)built.
func (c *Collector) CSREvent(hit bool) {
	if c == nil {
		return
	}
	if hit {
		c.csrReuses.Add(1)
	} else {
		c.csrBuilds.Add(1)
	}
}

// SnapshotBuild records one CSR snapshot acquisition that was NOT a
// cache reuse (those go through CSREvent alone). Exactly one of the
// three outcomes applies per call: a delta apply (delta=true, with its
// op count and the approximate shared/copied byte split of the
// resulting snapshot), a fallback (fallback=true: a delta existed but
// was declined and a full build ran), or a plain full build (both
// false: no previous snapshot or recording was off).
func (c *Collector) SnapshotBuild(delta, fallback bool, deltaOps int, bytesShared, bytesCopied int64) {
	if c == nil {
		return
	}
	switch {
	case delta:
		c.snapDeltas.Add(1)
		c.snapDeltaOps.Add(int64(deltaOps))
		c.snapShared.Add(bytesShared)
		c.snapCopied.Add(bytesCopied)
	case fallback:
		c.snapFalls.Add(1)
	default:
		c.snapFull.Add(1)
	}
}

// PropColEvent records columnar-predicate activity, batched per
// filter chunk: hits counts predicate evaluations answered from the
// snapshot's property columns, falls those that fell back to the
// interpreter (refs the snapshot does not know).
func (c *Collector) PropColEvent(hits, falls int64) {
	if c == nil {
		return
	}
	if hits != 0 {
		c.propColHits.Add(hits)
	}
	if falls != 0 {
		c.propColFalls.Add(falls)
	}
}

// RecordBudget adds the governor's consumed budget for one statement.
// The counters are nonzero only when the corresponding limit is set:
// the governor deliberately skips its atomics when unlimited, so the
// hot kernels pay nothing by default (kernel spans still report
// frontier activity via Pops/Arrivals).
func (c *Collector) RecordBudget(frontier, results int64) {
	if c == nil {
		return
	}
	if frontier != 0 {
		c.frontierUsed.Add(frontier)
	}
	if results != 0 {
		c.resultsUsed.Add(results)
	}
}

// Start opens a span for op. On a nil collector it returns nil, and
// every *ActiveSpan method is nil-safe, so call sites need no guard:
//
//	sp := c.col.Start(obs.OpScan)
//	... work ...
//	sp.Rows(0, int64(tbl.Len())).End()
func (c *Collector) Start(op Op) *ActiveSpan {
	if c == nil {
		return nil
	}
	sp := &ActiveSpan{c: c, start: time.Now()}
	sp.span.Op = op
	sp.span.Depth = c.depth.Load()
	c.mu.Lock()
	h := c.handler
	c.mu.Unlock()
	if h != nil {
		h.SpanStart(op, int(sp.span.Depth))
	}
	return sp
}

// ActiveSpan is an in-flight operator measurement. Methods chain and
// are nil-safe; End (or Fail) finalises the span exactly once.
type ActiveSpan struct {
	c     *Collector
	span  Span
	start time.Time
}

// Verbose reports whether the span records labels. Callers use it to
// skip label formatting on the metrics-only path.
func (sp *ActiveSpan) Verbose() bool {
	return sp != nil && sp.c.verbose.Load()
}

// SetLabel attaches the plan-line text identifying this operator.
func (sp *ActiveSpan) SetLabel(label string) *ActiveSpan {
	if sp != nil {
		sp.span.Label = label
	}
	return sp
}

// Rows records the operator's input and output cardinality.
func (sp *ActiveSpan) Rows(in, out int64) *ActiveSpan {
	if sp != nil {
		sp.span.RowsIn = in
		sp.span.RowsOut = out
	}
	return sp
}

// Indexed records whether a scan used the label index.
func (sp *ActiveSpan) Indexed(used bool) *ActiveSpan {
	if sp != nil {
		sp.span.Indexed = used
	}
	return sp
}

// Frontier records kernel frontier counters: pops from the search
// frontier and arrivals pushed onto it.
func (sp *ActiveSpan) Frontier(pops, arrivals int64) *ActiveSpan {
	if sp != nil {
		sp.span.Pops = pops
		sp.span.Arrivals = arrivals
	}
	return sp
}

// End finalises the span, appends it to the collector, and notifies
// the trace handler.
func (sp *ActiveSpan) End() {
	if sp == nil {
		return
	}
	sp.span.Elapsed = time.Since(sp.start)
	c := sp.c
	c.mu.Lock()
	c.spans = append(c.spans, sp.span)
	h := c.handler
	c.mu.Unlock()
	if h != nil {
		h.SpanEnd(sp.span)
	}
}

// Fail finalises the span with the error flag set.
func (sp *ActiveSpan) Fail() {
	if sp == nil {
		return
	}
	sp.span.Err = true
	sp.End()
}

// Mark is a position in a collector's history; Since/SpansSince
// report only what was recorded after the mark, letting one sink
// collector serve many statements.
type Mark struct {
	spans     int
	nfaHits   int64
	nfaMisses int64
	csrReuses int64
	csrBuilds int64
	snapFull  int64
	snapDelta int64
	snapFalls int64
	snapOps   int64
	snapShare int64
	snapCopy  int64
	frontier  int64
	results   int64
	propHits  int64
	propFalls int64

	planHits    int64
	planMisses  int64
	planCompile int64
}

// Mark snapshots the collector's current position. Safe on nil (the
// zero Mark then matches the empty history).
func (c *Collector) Mark() Mark {
	if c == nil {
		return Mark{}
	}
	c.mu.Lock()
	n := len(c.spans)
	c.mu.Unlock()
	return Mark{
		spans:       n,
		nfaHits:     c.nfaHits.Load(),
		nfaMisses:   c.nfaMisses.Load(),
		csrReuses:   c.csrReuses.Load(),
		csrBuilds:   c.csrBuilds.Load(),
		snapFull:    c.snapFull.Load(),
		snapDelta:   c.snapDeltas.Load(),
		snapFalls:   c.snapFalls.Load(),
		snapOps:     c.snapDeltaOps.Load(),
		snapShare:   c.snapShared.Load(),
		snapCopy:    c.snapCopied.Load(),
		frontier:    c.frontierUsed.Load(),
		results:     c.resultsUsed.Load(),
		propHits:    c.propColHits.Load(),
		propFalls:   c.propColFalls.Load(),
		planHits:    c.planHits.Load(),
		planMisses:  c.planMisses.Load(),
		planCompile: c.planCompileNS.Load(),
	}
}

// SpansSince returns a copy of the spans recorded after m.
func (c *Collector) SpansSince(m Mark) []Span {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if m.spans >= len(c.spans) {
		return nil
	}
	out := make([]Span, len(c.spans)-m.spans)
	copy(out, c.spans[m.spans:])
	return out
}

// OpStat aggregates the spans of one operator class.
type OpStat struct {
	Count    int64
	RowsIn   int64
	RowsOut  int64
	Pops     int64
	Arrivals int64
	Elapsed  time.Duration
}

// Stats is the aggregate view of a collector (or a Since window).
type Stats struct {
	Ops [numOps]OpStat

	NFAHits      int64
	NFAMisses    int64
	CSRReuses    int64
	CSRBuilds    int64
	FrontierUsed int64

	// CSR snapshot maintenance: how non-reused snapshots were obtained
	// (full build, incremental delta apply, declined-delta fallback),
	// the mutation ops the applied deltas carried, and the approximate
	// bytes the delta-applied snapshots share with vs. copied from
	// their predecessors.
	SnapshotFullBuilds   int64
	SnapshotDeltaApplies int64
	SnapshotFallbacks    int64
	SnapshotDeltaOps     int64
	SnapshotBytesShared  int64
	SnapshotBytesCopied  int64

	ResultsUsed      int64
	PropColHits      int64
	PropColFallbacks int64

	PlanCacheHits    int64
	PlanCacheMisses  int64
	PlanCacheCompile time.Duration
}

// Op returns the aggregate for one operator class.
func (s *Stats) Op(op Op) OpStat { return s.Ops[op] }

// Since aggregates everything recorded after m. Subquery spans
// (Depth>0) are folded into the same operator classes — a row scanned
// inside EXISTS is still a row scanned.
func (c *Collector) Since(m Mark) Stats {
	var st Stats
	if c == nil {
		return st
	}
	c.mu.Lock()
	spans := c.spans[min(m.spans, len(c.spans)):]
	for i := range spans {
		sp := &spans[i]
		os := &st.Ops[sp.Op]
		os.Count++
		os.RowsIn += sp.RowsIn
		os.RowsOut += sp.RowsOut
		os.Pops += sp.Pops
		os.Arrivals += sp.Arrivals
		os.Elapsed += sp.Elapsed
	}
	c.mu.Unlock()
	st.NFAHits = c.nfaHits.Load() - m.nfaHits
	st.NFAMisses = c.nfaMisses.Load() - m.nfaMisses
	st.CSRReuses = c.csrReuses.Load() - m.csrReuses
	st.CSRBuilds = c.csrBuilds.Load() - m.csrBuilds
	st.SnapshotFullBuilds = c.snapFull.Load() - m.snapFull
	st.SnapshotDeltaApplies = c.snapDeltas.Load() - m.snapDelta
	st.SnapshotFallbacks = c.snapFalls.Load() - m.snapFalls
	st.SnapshotDeltaOps = c.snapDeltaOps.Load() - m.snapOps
	st.SnapshotBytesShared = c.snapShared.Load() - m.snapShare
	st.SnapshotBytesCopied = c.snapCopied.Load() - m.snapCopy
	st.FrontierUsed = c.frontierUsed.Load() - m.frontier
	st.ResultsUsed = c.resultsUsed.Load() - m.results
	st.PropColHits = c.propColHits.Load() - m.propHits
	st.PropColFallbacks = c.propColFalls.Load() - m.propFalls
	st.PlanCacheHits = c.planHits.Load() - m.planHits
	st.PlanCacheMisses = c.planMisses.Load() - m.planMisses
	st.PlanCacheCompile = time.Duration(c.planCompileNS.Load() - m.planCompile)
	return st
}

// Stats aggregates the collector's full history.
func (c *Collector) Stats() Stats { return c.Since(Mark{}) }
