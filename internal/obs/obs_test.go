package obs

import (
	"errors"
	"sync"
	"testing"
)

func TestNilCollectorIsNoOp(t *testing.T) {
	var c *Collector
	sp := c.Start(OpScan)
	if sp != nil {
		t.Fatalf("nil collector Start = %v, want nil", sp)
	}
	// Every chainable method must tolerate the nil span.
	sp.SetLabel("x").Rows(1, 2).Indexed(true).Frontier(3, 4).End()
	sp.Fail()
	if sp.Verbose() {
		t.Fatal("nil span reports verbose")
	}
	c.NFAEvent(true)
	c.CSREvent(false)
	c.RecordBudget(1, 2)
	c.EnterSub()
	c.ExitSub()
	c.SetHandler(nil)
	if got := c.Since(c.Mark()); got.NFAHits != 0 {
		t.Fatalf("nil collector stats = %+v", got)
	}
	if c.SpansSince(Mark{}) != nil {
		t.Fatal("nil collector returned spans")
	}
}

func TestSpanRecording(t *testing.T) {
	c := NewCollector()
	sp := c.Start(OpScan)
	if !sp.Verbose() {
		t.Fatal("NewCollector should be verbose")
	}
	sp.SetLabel("node scan (x:Person)").Rows(0, 42).Indexed(true).End()

	c.EnterSub()
	c.Start(OpScan).Rows(0, 7).End()
	c.ExitSub()

	c.Start(OpShortest).Frontier(10, 25).Rows(3, 5).Fail()

	spans := c.SpansSince(Mark{})
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	if spans[0].Label != "node scan (x:Person)" || !spans[0].Indexed || spans[0].RowsOut != 42 {
		t.Fatalf("scan span = %+v", spans[0])
	}
	if spans[0].Depth != 0 || spans[1].Depth != 1 {
		t.Fatalf("depths = %d, %d; want 0, 1", spans[0].Depth, spans[1].Depth)
	}
	if !spans[2].Err || spans[2].Pops != 10 || spans[2].Arrivals != 25 {
		t.Fatalf("kernel span = %+v", spans[2])
	}

	st := c.Stats()
	if st.Op(OpScan).Count != 2 || st.Op(OpScan).RowsOut != 49 {
		t.Fatalf("scan stat = %+v", st.Op(OpScan))
	}
	if st.Op(OpShortest).Pops != 10 {
		t.Fatalf("shortest stat = %+v", st.Op(OpShortest))
	}
}

func TestMarkSinceWindows(t *testing.T) {
	c := NewCollector()
	c.Start(OpScan).Rows(0, 5).End()
	c.NFAEvent(false)
	m := c.Mark()
	c.Start(OpScan).Rows(5, 3).End()
	c.NFAEvent(true)
	c.CSREvent(true)
	c.RecordBudget(100, 9)

	st := c.Since(m)
	if st.Op(OpScan).Count != 1 || st.Op(OpScan).RowsOut != 3 {
		t.Fatalf("windowed scan stat = %+v", st.Op(OpScan))
	}
	if st.NFAHits != 1 || st.NFAMisses != 0 || st.CSRReuses != 1 {
		t.Fatalf("windowed cache stats = %+v", st)
	}
	if st.FrontierUsed != 100 || st.ResultsUsed != 9 {
		t.Fatalf("windowed budget = %+v", st)
	}
	if got := len(c.SpansSince(m)); got != 1 {
		t.Fatalf("SpansSince = %d spans, want 1", got)
	}
	// A stale mark beyond the history is harmless.
	c2 := NewCollector()
	if got := c2.SpansSince(m); got != nil {
		t.Fatalf("stale mark returned %d spans", len(got))
	}
}

func TestResetClearsEverything(t *testing.T) {
	c := NewCollector()
	c.Start(OpJoin).Rows(4, 2).End()
	c.NFAEvent(true)
	c.EnterSub()
	c.Reset(nil)
	if c.verbose.Load() {
		t.Fatal("Reset(nil) should disable verbose")
	}
	if st := c.Stats(); st.Op(OpJoin).Count != 0 || st.NFAHits != 0 {
		t.Fatalf("stats after reset = %+v", st)
	}
	if c.Start(OpScan).Verbose() {
		t.Fatal("span verbose after Reset(nil)")
	}
	if d := c.depth.Load(); d != 0 {
		t.Fatalf("depth after reset = %d", d)
	}
	c.Reset(handlerFunc{})
	if !c.verbose.Load() {
		t.Fatal("Reset with handler should enable verbose")
	}
}

type handlerFunc struct {
	onStart func(Op, int)
	onEnd   func(Span)
}

func (h handlerFunc) SpanStart(op Op, depth int) {
	if h.onStart != nil {
		h.onStart(op, depth)
	}
}

func (h handlerFunc) SpanEnd(sp Span) {
	if h.onEnd != nil {
		h.onEnd(sp)
	}
}

func TestTraceHandlerEvents(t *testing.T) {
	var mu sync.Mutex
	var starts []Op
	var ends []Span
	h := handlerFunc{
		onStart: func(op Op, depth int) { mu.Lock(); starts = append(starts, op); mu.Unlock() },
		onEnd:   func(sp Span) { mu.Lock(); ends = append(ends, sp); mu.Unlock() },
	}
	c := NewCollector()
	c.SetHandler(h)
	c.Start(OpExpand).SetLabel("expand").Rows(5, 9).End()
	if len(starts) != 1 || starts[0] != OpExpand {
		t.Fatalf("starts = %v", starts)
	}
	if len(ends) != 1 || ends[0].Label != "expand" || ends[0].RowsOut != 9 {
		t.Fatalf("ends = %+v", ends)
	}
}

func TestCollectorConcurrency(t *testing.T) {
	c := NewCollector()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				c.Start(OpExpand).Rows(1, 1).End()
				c.NFAEvent(i%2 == 0)
				c.Mark()
				c.Stats()
			}
		}()
	}
	wg.Wait()
	st := c.Stats()
	if st.Op(OpExpand).Count != 8*200 {
		t.Fatalf("count = %d, want %d", st.Op(OpExpand).Count, 8*200)
	}
	if st.NFAHits+st.NFAMisses != 8*200 {
		t.Fatalf("nfa events = %d", st.NFAHits+st.NFAMisses)
	}
}

func TestOpString(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < numOps; i++ {
		s := Op(i).String()
		if s == "" || s == "op?" || seen[s] {
			t.Fatalf("Op(%d).String() = %q", i, s)
		}
		seen[s] = true
	}
	if Op(200).String() != "op?" {
		t.Fatalf("out-of-range Op string = %q", Op(200).String())
	}
}

func TestRegistryObserveSnapshot(t *testing.T) {
	r := NewRegistry()
	c := NewCollector()
	c.Start(OpScan).Rows(0, 10).End()
	c.Start(OpReach).Frontier(5, 12).Rows(0, 4).End()
	c.NFAEvent(false)
	r.Observe(c.Stats(), nil)
	r.Observe(Stats{}, errors.New("boom"))

	m := r.Snapshot()
	if m.Queries != 2 || m.Errors != 1 {
		t.Fatalf("queries/errors = %d/%d", m.Queries, m.Errors)
	}
	sc, ok := m.Operators["scan"]
	if !ok || sc.Count != 1 || sc.RowsOut != 10 {
		t.Fatalf("scan metrics = %+v (ok=%v)", sc, ok)
	}
	rc := m.Operators["reach"]
	if rc.Pops != 5 || rc.Arrivals != 12 {
		t.Fatalf("reach metrics = %+v", rc)
	}
	if m.NFACacheMisses != 1 {
		t.Fatalf("nfa misses = %d", m.NFACacheMisses)
	}
	if _, present := m.Operators["join"]; present {
		t.Fatal("zero-count operator exported")
	}
	// Nil registry is a no-op.
	var nr *Registry
	nr.Observe(c.Stats(), nil)
	if s := nr.Snapshot(); s.Queries != 0 {
		t.Fatalf("nil registry snapshot = %+v", s)
	}
}
