package obs

import "testing"

// BenchmarkCollectorSpan is the cost of one fully-populated span on
// the metrics-only path (no handler, labels skipped) — the per-
// operator overhead EXPLAIN-less queries pay when a collector is
// installed.
func BenchmarkCollectorSpan(b *testing.B) {
	c := NewCollector()
	c.Reset(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := c.Start(OpExpand)
		if sp.Verbose() {
			sp.SetLabel("expand (x)-[:knows]->(y) (adjacency)")
		}
		sp.Rows(128, 256).End()
		if i&1023 == 0 {
			c.Reset(nil)
		}
	}
}

// BenchmarkNilCollectorSpan is the cost when no collector is
// installed at all — the default query path.
func BenchmarkNilCollectorSpan(b *testing.B) {
	var c *Collector
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := c.Start(OpExpand)
		if sp.Verbose() {
			sp.SetLabel("never")
		}
		sp.Rows(128, 256).End()
	}
}
