package bindings

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"gcore/internal/value"
)

// Tests for the columnar table layout: Key injectivity (the '|'-join
// collision hazard), hash/key consistency, and exact-sequence
// agreement of the hashed operators with a naive reference that
// replays the legacy nested-loop algorithm, over randomized tables
// with unbound slots and adversarial string values.

// adversarialVals contains values whose Key fragments contain the
// join separator '|', the unbound marker '?', and strings shaped like
// the length prefix itself.
var adversarialVals = []value.Value{
	value.Null,
	value.Bool(true),
	value.Int(0),
	value.Int(2),
	value.Str(""),
	value.Str("a"),
	value.Str("?"),
	value.Str("|"),
	value.Str("a|b"),
	value.Str(`a"|s"b`),
	value.Str("2:ab"),
	value.Str("?|"),
	value.Float(1.5),
	value.Float(2),
	value.NodeRef(1),
	value.EdgeRef(1),
	value.List(value.Int(1), value.Str("|")),
}

// TestKeyInjectiveAdversarial: two bindings have the same Key over
// vars iff they agree (bound-ness and value) on every var. The old
// encoding joined raw fragments with '|' and wrote a bare '?' for
// unbound vars, so fragments containing those bytes could collide
// across variable boundaries; the length prefix makes the encoding
// injective for arbitrary fragments.
func TestKeyInjectiveAdversarial(t *testing.T) {
	vars := []string{"x", "y", "z"}
	// All bindings over vars with each slot unbound or any adversarial
	// value would be 18^3; sample instead, plus a few crafted pairs.
	gen := func(r *rand.Rand) Binding {
		b := Binding{}
		for _, v := range vars {
			if i := r.Intn(len(adversarialVals) + 1); i > 0 {
				b[v] = adversarialVals[i-1]
			}
		}
		return b
	}
	sameOn := func(a, b Binding) bool {
		for _, v := range vars {
			av, aok := a[v]
			bv, bok := b[v]
			if aok != bok || (aok && !value.Equal(av, bv)) {
				return false
			}
		}
		return true
	}
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		a, b := gen(r), gen(r)
		if (a.Key(vars) == b.Key(vars)) != sameOn(a, b) {
			t.Fatalf("Key collision or miss:\na=%v key=%q\nb=%v key=%q", a, a.Key(vars), b, b.Key(vars))
		}
	}
	// The historical hazard, spelled out: moving a separator across a
	// variable boundary must change the key.
	p1 := Binding{"x": value.Str("a|b"), "y": value.Str("c")}
	p2 := Binding{"x": value.Str("a"), "y": value.Str("b|c")}
	if p1.Key(vars) == p2.Key(vars) {
		t.Fatal("separator smuggled across variable boundary")
	}
	// A bound '?'-like string must not collide with an unbound slot.
	q1 := Binding{"x": value.Str("?")}
	q2 := Binding{}
	if q1.Key(vars) == q2.Key(vars) {
		t.Fatal("bound \"?\" collides with unbound slot")
	}
}

// FuzzKeyInjective drives the same invariant from fuzzed strings.
func FuzzKeyInjective(f *testing.F) {
	f.Add("a|b", "c", "a", "b|c")
	f.Add("?", "x", "", "?|x")
	f.Add("2:ab", "", "2", ":ab")
	f.Fuzz(func(t *testing.T, x1, y1, x2, y2 string) {
		vars := []string{"x", "y"}
		a := Binding{"x": value.Str(x1), "y": value.Str(y1)}
		b := Binding{"x": value.Str(x2), "y": value.Str(y2)}
		same := x1 == x2 && y1 == y2
		if (a.Key(vars) == b.Key(vars)) != same {
			t.Fatalf("injectivity broken: %q/%q vs %q/%q", x1, y1, x2, y2)
		}
	})
}

// TestHashMatchesKey: the FNV hash and the Key encoding must agree on
// what is equal — equal keys hash equal (else hashed joins split a
// bucket the string-keyed code would share), and unequal keys should
// essentially never collide over the small test domain.
func TestHashMatchesKey(t *testing.T) {
	seed := value.HashSeed()
	for _, a := range adversarialVals {
		for _, b := range adversarialVals {
			ka, kb := a.Key(), b.Key()
			ha, hb := a.Hash(seed), b.Hash(seed)
			if ka == kb && ha != hb {
				t.Fatalf("equal keys, unequal hashes: %s vs %s", a, b)
			}
			if ka != kb && ha == hb {
				t.Fatalf("hash collision in tiny domain: %s vs %s", a, b)
			}
		}
	}
	// Numeric canonicalisation: 2.0 and 2 are Equal, so they must
	// share both key and hash.
	if value.Float(2).Hash(seed) != value.Int(2).Hash(seed) {
		t.Fatal("integral float must hash like the equal int")
	}
}

// --- naive reference: the legacy nested-loop operators ---------------

func refLegacyKey(b Binding, vars []string) string {
	var sb strings.Builder
	for _, v := range vars {
		if val, ok := b[v]; ok {
			sb.WriteString(val.Key())
		} else {
			sb.WriteByte('?')
		}
		sb.WriteByte('|')
	}
	return sb.String()
}

func refBoundAll(b Binding, vars []string) bool {
	for _, v := range vars {
		if _, ok := b[v]; !ok {
			return false
		}
	}
	return true
}

func refEqualOn(a, b Binding, vars []string) bool {
	for _, v := range vars {
		av, aok := a[v]
		bv, bok := b[v]
		if aok != bok || (aok && !value.Equal(av, bv)) {
			return false
		}
	}
	return true
}

func refShared(a, b *Table) []string {
	var out []string
	for _, v := range a.Vars() {
		if b.HasVar(v) {
			out = append(out, v)
		}
	}
	return out
}

// refJoinRows replays the legacy matcher's candidate order exactly:
// a probe bound on all shared vars sees the matching dense rows in
// insertion order then the loose rows; an unbound probe sees the
// loose rows then every dense row in canonical key order.
func refJoinRows(a, b *Table, left bool) []Binding {
	shared := refShared(a, b)
	var dense, loose []Binding
	for _, r := range b.Rows() {
		if refBoundAll(r, shared) {
			dense = append(dense, r)
		} else {
			loose = append(loose, r)
		}
	}
	denseSorted := append([]Binding(nil), dense...)
	sort.SliceStable(denseSorted, func(i, j int) bool {
		return refLegacyKey(denseSorted[i], shared) < refLegacyKey(denseSorted[j], shared)
	})
	var out []Binding
	for _, l := range a.Rows() {
		matched := false
		emit := func(r Binding) {
			matched = true
			out = append(out, Merge(l, r))
		}
		if refBoundAll(l, shared) {
			for _, r := range dense {
				if refEqualOn(l, r, shared) {
					emit(r)
				}
			}
			for _, r := range loose {
				if Compatible(l, r) {
					emit(r)
				}
			}
		} else {
			for _, r := range loose {
				if Compatible(l, r) {
					emit(r)
				}
			}
			for _, r := range denseSorted {
				if Compatible(l, r) {
					emit(r)
				}
			}
		}
		if left && !matched {
			out = append(out, l.Clone())
		}
	}
	return out
}

func refDistinctRows(t *Table) []Binding {
	var out []Binding
	for _, r := range t.Rows() {
		dup := false
		for _, s := range out {
			if refEqualOn(r, s, t.Vars()) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, r)
		}
	}
	return out
}

func refUnionRows(a, b *Table, vars []string) []Binding {
	var out []Binding
	for _, t := range []*Table{a, b} {
		for _, r := range t.Rows() {
			dup := false
			for _, s := range out {
				if refEqualOn(r, s, vars) {
					dup = true
					break
				}
			}
			if !dup {
				out = append(out, r)
			}
		}
	}
	return out
}

type refGroup struct {
	rep  Binding
	rows []Binding
}

func refGroupBy(t *Table, gamma []string) []refGroup {
	var groups []refGroup
	for _, r := range t.Rows() {
		found := false
		for i := range groups {
			if refEqualOn(groups[i].rep, r, gamma) {
				groups[i].rows = append(groups[i].rows, r)
				found = true
				break
			}
		}
		if !found {
			groups = append(groups, refGroup{rep: r, rows: []Binding{r}})
		}
	}
	sort.SliceStable(groups, func(i, j int) bool {
		return refLegacyKey(groups[i].rep, gamma) < refLegacyKey(groups[j].rep, gamma)
	})
	return groups
}

// --- generators ------------------------------------------------------

var propVarPool = []string{"w", "x", "y", "z"}

func propVars(r *rand.Rand) []string {
	var vars []string
	for _, v := range propVarPool {
		if r.Intn(2) == 0 {
			vars = append(vars, v)
		}
	}
	if len(vars) == 0 {
		vars = []string{"x"}
	}
	return vars
}

func propTable(r *rand.Rand, vars []string) *Table {
	t := EmptyTable(vars...)
	n := r.Intn(7)
	for i := 0; i < n; i++ {
		b := Binding{}
		for _, v := range vars {
			if j := r.Intn(len(adversarialVals) + 4); j < len(adversarialVals) {
				b[v] = adversarialVals[j]
			}
			// else: leave the slot unbound
		}
		t.Add(b)
	}
	return t
}

func sameRows(got *Table, want []Binding, vars []string) bool {
	if got.Len() != len(want) {
		return false
	}
	for i := 0; i < got.Len(); i++ {
		if !refEqualOn(got.RowBinding(i), want[i], vars) {
			return false
		}
	}
	return true
}

func dumpRows(rows []Binding) string {
	var sb strings.Builder
	for _, r := range rows {
		sb.WriteString(r.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

func dumpTable(t *Table) string {
	var sb strings.Builder
	for i := 0; i < t.Len(); i++ {
		sb.WriteString(t.RowBinding(i).String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestColumnarJoinMatchesReference: Join and LeftJoin reproduce the
// legacy emission sequence exactly — row for row, not just as sets.
func TestColumnarJoinMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 400; i++ {
		a := propTable(r, propVars(r))
		b := propTable(r, propVars(r))
		all := normVars(append(append([]string(nil), a.Vars()...), b.Vars()...))
		if got, want := Join(a, b), refJoinRows(a, b, false); !sameRows(got, want, all) {
			t.Fatalf("case %d: Join diverged\na:\n%sb:\n%sgot:\n%swant:\n%s",
				i, dumpTable(a), dumpTable(b), dumpTable(got), dumpRows(want))
		}
		if got, want := LeftJoin(a, b), refJoinRows(a, b, true); !sameRows(got, want, all) {
			t.Fatalf("case %d: LeftJoin diverged\na:\n%sb:\n%sgot:\n%swant:\n%s",
				i, dumpTable(a), dumpTable(b), dumpTable(got), dumpRows(want))
		}
	}
}

// TestColumnarSemiAntiMatchReference: the existence operators keep the
// exact probe-side sequence.
func TestColumnarSemiAntiMatchReference(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for i := 0; i < 400; i++ {
		a := propTable(r, propVars(r))
		b := propTable(r, propVars(r))
		var wantSemi, wantAnti []Binding
		for _, l := range a.Rows() {
			matched := false
			for _, rr := range b.Rows() {
				if Compatible(l, rr) {
					matched = true
					break
				}
			}
			if matched {
				wantSemi = append(wantSemi, l)
			} else {
				wantAnti = append(wantAnti, l)
			}
		}
		if got := SemiJoin(a, b); !sameRows(got, wantSemi, a.Vars()) {
			t.Fatalf("case %d: SemiJoin diverged\ngot:\n%swant:\n%s", i, dumpTable(got), dumpRows(wantSemi))
		}
		if got := AntiJoin(a, b); !sameRows(got, wantAnti, a.Vars()) {
			t.Fatalf("case %d: AntiJoin diverged\ngot:\n%swant:\n%s", i, dumpTable(got), dumpRows(wantAnti))
		}
	}
}

// TestColumnarDistinctUnionMatchReference: set semantics dedup by row
// equality (unbound == unbound), keeping first occurrences in order.
func TestColumnarDistinctUnionMatchReference(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for i := 0; i < 400; i++ {
		a := propTable(r, propVars(r))
		b := propTable(r, propVars(r))
		all := normVars(append(append([]string(nil), a.Vars()...), b.Vars()...))
		if got, want := a.Distinct(), refDistinctRows(a); !sameRows(got, want, a.Vars()) {
			t.Fatalf("case %d: Distinct diverged\ngot:\n%swant:\n%s", i, dumpTable(got), dumpRows(want))
		}
		if got, want := Union(a, b), refUnionRows(a, b, all); !sameRows(got, want, all) {
			t.Fatalf("case %d: Union diverged\ngot:\n%swant:\n%s", i, dumpTable(got), dumpRows(want))
		}
	}
}

// TestColumnarGroupByMatchesReference: group identity, group order and
// within-group row order all match the reference.
func TestColumnarGroupByMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	for i := 0; i < 400; i++ {
		vars := propVars(r)
		a := propTable(r, vars)
		gamma := vars[:r.Intn(len(vars)+1)]
		got := a.GroupBy(gamma)
		want := refGroupBy(a, normVars(gamma))
		if len(got) != len(want) {
			t.Fatalf("case %d: %d groups, want %d", i, len(got), len(want))
		}
		for gi := range got {
			wantKey := Binding{}
			for _, v := range normVars(gamma) {
				if val, ok := want[gi].rep[v]; ok {
					wantKey[v] = val
				}
			}
			if !refEqualOn(got[gi].Key, wantKey, normVars(gamma)) {
				t.Fatalf("case %d group %d: key %v, want %v", i, gi, got[gi].Key, wantKey)
			}
			if len(got[gi].Rows) != len(want[gi].rows) {
				t.Fatalf("case %d group %d: %d rows, want %d", i, gi, len(got[gi].Rows), len(want[gi].rows))
			}
			for ri := range got[gi].Rows {
				if !refEqualOn(got[gi].Rows[ri], want[gi].rows[ri], vars) {
					t.Fatalf("case %d group %d row %d diverged", i, gi, ri)
				}
			}
		}
	}
}

// TestQuickSortedCanonicalOrder: Sorted orders rows by the canonical
// '|'-joined key the legacy code used, so serialized output (which is
// what the differential suites pin) is unchanged.
func TestQuickSortedCanonicalOrder(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := propTable(r, propVars(r))
		s := a.Sorted()
		for i := 1; i < s.Len(); i++ {
			if refLegacyKey(s.RowBinding(i-1), a.Vars()) > refLegacyKey(s.RowBinding(i), a.Vars()) {
				return false
			}
		}
		return s.Len() == a.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
