package bindings

import (
	"fmt"
	"testing"

	"gcore/internal/value"
)

func benchTables(n int) (*Table, *Table) {
	a := EmptyTable("x", "y")
	b := EmptyTable("y", "z")
	for i := 0; i < n; i++ {
		a.Add(Binding{"x": value.Int(int64(i)), "y": value.Int(int64(i % (n / 4)))})
		b.Add(Binding{"y": value.Int(int64(i % (n / 4))), "z": value.Str("v")})
	}
	return a, b
}

func BenchmarkJoin(b *testing.B) {
	for _, n := range []int{100, 1000} {
		a, t := benchTables(n)
		b.Run(fmt.Sprintf("rows=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if Join(a, t).Len() == 0 {
					b.Fatal("empty join")
				}
			}
		})
	}
}

func BenchmarkLeftJoin(b *testing.B) {
	a, t := benchTables(1000)
	for i := 0; i < b.N; i++ {
		if LeftJoin(a, t).Len() == 0 {
			b.Fatal("empty join")
		}
	}
}

func BenchmarkGroupBy(b *testing.B) {
	a, _ := benchTables(1000)
	for i := 0; i < b.N; i++ {
		if len(a.GroupBy([]string{"y"})) == 0 {
			b.Fatal("no groups")
		}
	}
}
