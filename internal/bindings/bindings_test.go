package bindings

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"gcore/internal/value"
)

func row(kv ...any) Binding {
	b := Binding{}
	for i := 0; i < len(kv); i += 2 {
		b[kv[i].(string)] = kv[i+1].(value.Value)
	}
	return b
}

func TestCompatibleAndMerge(t *testing.T) {
	a := row("x", value.NodeRef(1), "y", value.Int(2))
	b := row("y", value.Int(2), "z", value.Str("s"))
	c := row("y", value.Int(3))
	if !Compatible(a, b) || Compatible(a, c) {
		t.Fatal("compatibility misjudged")
	}
	if !Compatible(a, Empty()) || !Compatible(Empty(), a) {
		t.Fatal("µ∅ is compatible with everything")
	}
	m := Merge(a, b)
	if len(m) != 3 || !value.Equal(m["z"], value.Str("s")) {
		t.Fatalf("merge = %v", m)
	}
	cl := a.Clone()
	cl["x"] = value.NodeRef(9)
	if value.Equal(a["x"], cl["x"]) {
		t.Error("Clone must be independent")
	}
	if got := a.Vars(); len(got) != 2 || got[0] != "x" || got[1] != "y" {
		t.Errorf("Vars = %v", got)
	}
}

func TestBindingKeyAndString(t *testing.T) {
	a := row("x", value.Int(1))
	b := row("x", value.Int(1), "y", value.Int(2))
	if a.Key([]string{"x"}) != b.Key([]string{"x"}) {
		t.Error("keys over same restriction must agree")
	}
	if a.Key([]string{"x", "y"}) == b.Key([]string{"x", "y"}) {
		t.Error("unbound var must be distinguished in key")
	}
	if !strings.Contains(b.String(), "y->2") {
		t.Errorf("String = %q", b.String())
	}
}

// The worked example of §A.2: three pattern tables joined to a single
// binding {x↦105, y↦102, w↦106, z↦301}.
func TestJoinPaperExample(t *testing.T) {
	t1 := NewTable([]string{"x", "w"},
		row("x", value.NodeRef(105), "w", value.NodeRef(106)),
		row("x", value.NodeRef(102), "w", value.NodeRef(106)))
	t2 := NewTable([]string{"y", "w"},
		row("y", value.NodeRef(102), "w", value.NodeRef(106)),
		row("y", value.NodeRef(105), "w", value.NodeRef(106)))
	t3 := NewTable([]string{"z", "x", "y"},
		row("z", value.PathRef(301), "x", value.NodeRef(105), "y", value.NodeRef(102)))

	j12 := Join(t1, t2)
	if j12.Len() != 4 {
		t.Fatalf("t1 ⋈ t2 has %d rows, want 4 (cartesian on shared w)", j12.Len())
	}
	j := Join(j12, t3)
	if j.Len() != 1 {
		t.Fatalf("final join has %d rows, want 1", j.Len())
	}
	got := j.Rows()[0]
	want := row("x", value.NodeRef(105), "y", value.NodeRef(102), "w", value.NodeRef(106), "z", value.PathRef(301))
	if !Compatible(got, want) || len(got) != 4 {
		t.Fatalf("join row = %v", got)
	}
}

func TestJoinDisjointIsCartesian(t *testing.T) {
	a := NewTable([]string{"a"}, row("a", value.Int(1)), row("a", value.Int(2)))
	b := NewTable([]string{"b"}, row("b", value.Int(3)), row("b", value.Int(4)))
	j := Join(a, b)
	if j.Len() != 4 {
		t.Fatalf("cartesian product has %d rows", j.Len())
	}
}

func TestUnionDedups(t *testing.T) {
	a := NewTable([]string{"x"}, row("x", value.Int(1)))
	b := NewTable([]string{"x"}, row("x", value.Int(1)), row("x", value.Int(2)))
	u := Union(a, b)
	if u.Len() != 2 {
		t.Fatalf("union has %d rows", u.Len())
	}
}

func TestSemiAntiLeftJoin(t *testing.T) {
	people := NewTable([]string{"n"},
		row("n", value.NodeRef(1)), row("n", value.NodeRef(2)), row("n", value.NodeRef(3)))
	works := NewTable([]string{"n", "c"},
		row("n", value.NodeRef(1), "c", value.Str("Acme")),
		row("n", value.NodeRef(1), "c", value.Str("HAL")),
		row("n", value.NodeRef(2), "c", value.Str("CWI")))

	if got := SemiJoin(people, works); got.Len() != 2 {
		t.Errorf("semijoin = %d rows", got.Len())
	}
	anti := AntiJoin(people, works)
	if anti.Len() != 1 || !value.Equal(anti.Rows()[0]["n"], value.NodeRef(3)) {
		t.Errorf("antijoin = %v", anti.Rows())
	}
	lj := LeftJoin(people, works)
	if lj.Len() != 4 {
		t.Fatalf("leftjoin = %d rows, want 4", lj.Len())
	}
	// Node 3 keeps a row with c unbound.
	found := false
	for _, r := range lj.Rows() {
		if value.Equal(r["n"], value.NodeRef(3)) {
			if _, bound := r["c"]; bound {
				t.Error("unmatched row must leave optional var unbound")
			}
			found = true
		}
	}
	if !found {
		t.Error("left join lost the unmatched left row")
	}
}

// OPTIONAL semantics corner case: a right row that leaves a shared
// variable unbound is compatible with every left row.
func TestJoinWithUnboundSharedVars(t *testing.T) {
	a := NewTable([]string{"x"}, row("x", value.Int(1)), row("x", value.Int(2)))
	b := NewTable([]string{"x", "y"},
		row("y", value.Int(10)),                    // x unbound: compatible with both
		row("x", value.Int(1), "y", value.Int(20))) // only with x=1
	j := Join(a, b)
	if j.Len() != 3 {
		t.Fatalf("join = %d rows, want 3\n%s", j.Len(), j)
	}
	// And symmetric: left row missing the shared var probes everything.
	j2 := Join(b, a)
	if j2.Len() != 3 {
		t.Fatalf("reverse join = %d rows, want 3\n%s", j2.Len(), j2)
	}
}

func TestFilterProjectDistinctSorted(t *testing.T) {
	tbl := NewTable([]string{"x", "y"},
		row("x", value.Int(2), "y", value.Str("b")),
		row("x", value.Int(1), "y", value.Str("a")),
		row("x", value.Int(2), "y", value.Str("c")))
	f, err := tbl.Filter(func(b Binding) (bool, error) {
		i, _ := b["x"].AsInt()
		return i == 2, nil
	})
	if err != nil || f.Len() != 2 {
		t.Fatalf("filter = %v, %v", f, err)
	}
	p := f.Project([]string{"x"})
	if p.Len() != 2 || len(p.Vars()) != 1 {
		t.Fatalf("project = %v", p)
	}
	d := p.Distinct()
	if d.Len() != 1 {
		t.Fatalf("distinct = %d rows", d.Len())
	}
	s := tbl.Sorted()
	if i, _ := s.Rows()[0]["x"].AsInt(); i != 1 {
		t.Error("sorted order wrong")
	}
	if !tbl.HasVar("x") || tbl.HasVar("z") {
		t.Error("HasVar misbehaves")
	}
}

func TestFilterError(t *testing.T) {
	tbl := NewTable([]string{"x"}, row("x", value.Int(1)))
	_, err := tbl.Filter(func(Binding) (bool, error) { return false, errBoom })
	if err == nil {
		t.Error("filter must propagate errors")
	}
}

var errBoom = &value.TypeError{Op: "boom", Kind: value.KindBool}

func TestGroupBy(t *testing.T) {
	tbl := NewTable([]string{"e", "n"},
		row("e", value.Str("MIT"), "n", value.NodeRef(1)),
		row("e", value.Str("CWI"), "n", value.NodeRef(1)),
		row("e", value.Str("MIT"), "n", value.NodeRef(2)),
		row("n", value.NodeRef(3))) // e unbound
	gs := tbl.GroupBy([]string{"e"})
	if len(gs) != 3 {
		t.Fatalf("groups = %d, want 3 (MIT, CWI, unbound)", len(gs))
	}
	sizes := map[string]int{}
	for _, g := range gs {
		if v, ok := g.Key["e"]; ok {
			s, _ := v.AsString()
			sizes[s] = len(g.Rows)
		} else {
			sizes["<unbound>"] = len(g.Rows)
		}
	}
	if sizes["MIT"] != 2 || sizes["CWI"] != 1 || sizes["<unbound>"] != 1 {
		t.Errorf("group sizes = %v", sizes)
	}
	// Grouping by nothing puts every row in one group.
	all := tbl.GroupBy(nil)
	if len(all) != 1 || len(all[0].Rows) != 4 {
		t.Errorf("group by ∅ = %v", all)
	}
}

func TestUnitAndEmpty(t *testing.T) {
	u := Unit()
	if u.Len() != 1 || len(u.Rows()[0]) != 0 {
		t.Error("Unit must hold exactly µ∅")
	}
	e := EmptyTable("x")
	if e.Len() != 0 || !e.HasVar("x") {
		t.Error("EmptyTable misbehaves")
	}
	// Joining with Unit is the identity on rows.
	tbl := NewTable([]string{"x"}, row("x", value.Int(1)))
	if j := Join(u, tbl); j.Len() != 1 {
		t.Error("Unit ⋈ Ω must equal Ω")
	}
	// µ∅ semijoin keeps everything; antijoin with Unit removes all.
	if s := SemiJoin(tbl, u); s.Len() != 1 {
		t.Error("Ω ⋉ {µ∅} = Ω")
	}
	if a := AntiJoin(tbl, u); a.Len() != 0 {
		t.Error("Ω ∖ {µ∅} = ∅ (µ∅ is compatible with all)")
	}
}

func TestTableString(t *testing.T) {
	tbl := NewTable([]string{"x", "y"}, row("x", value.Int(1)))
	s := tbl.String()
	if !strings.Contains(s, "x\ty") || !strings.Contains(s, "·") {
		t.Errorf("String = %q", s)
	}
}

// randTable builds a random table over vars drawn from a tiny domain,
// so the property tests hit collisions and unbound vars.
func randTable(r *rand.Rand, vars []string) *Table {
	t := EmptyTable(vars...)
	n := r.Intn(8)
	for i := 0; i < n; i++ {
		b := Binding{}
		for _, v := range vars {
			switch r.Intn(3) {
			case 0:
				b[v] = value.Int(int64(r.Intn(3)))
			case 1:
				b[v] = value.Str("s")
			}
			// case 2: leave unbound
		}
		t.Add(b)
	}
	return t
}

// TestQuickLeftJoinDecomposition checks Ω1 ⟕ Ω2 = (Ω1 ⋈ Ω2) ∪ (Ω1 ∖ Ω2)
// and the semijoin/antijoin partition of Ω1.
func TestQuickLeftJoinDecomposition(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randTable(r, []string{"x", "y"})
		b := randTable(r, []string{"y", "z"})

		lj := LeftJoin(a, b)
		dec := Union(Join(a, b), AntiJoin(a, b))
		if lj.Distinct().Sorted().String() != dec.Distinct().Sorted().String() {
			return false
		}
		// ⋉ and ∖ partition Ω1 (as sets of rows).
		part := Union(SemiJoin(a, b), AntiJoin(a, b))
		return part.Distinct().Sorted().String() == a.Distinct().Sorted().String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickJoinCommutes checks Ω1 ⋈ Ω2 = Ω2 ⋈ Ω1 as sets.
func TestQuickJoinCommutes(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randTable(r, []string{"x", "y"})
		b := randTable(r, []string{"y", "z"})
		ab := Join(a, b).Distinct().Sorted()
		ba := Join(b, a).Distinct().Sorted()
		return ab.String() == ba.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickJoinMatchesNestedLoop validates the hybrid hash join against
// the obviously correct nested-loop definition.
func TestQuickJoinMatchesNestedLoop(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randTable(r, []string{"x", "y"})
		b := randTable(r, []string{"y", "z"})
		naive := EmptyTable("x", "y", "z")
		for _, l := range a.Rows() {
			for _, rr := range b.Rows() {
				if Compatible(l, rr) {
					naive.Add(Merge(l, rr))
				}
			}
		}
		return Join(a, b).Distinct().Sorted().String() == naive.Distinct().Sorted().String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestJoinLimited(t *testing.T) {
	a := EmptyTable("x")
	b := EmptyTable("y")
	for i := 0; i < 50; i++ {
		a.Add(Binding{"x": value.Int(int64(i))})
		b.Add(Binding{"y": value.Int(int64(i))})
	}
	// Cartesian would be 2500 rows; the limit aborts early.
	out, over := JoinLimited(a, b, 100)
	if !over {
		t.Fatal("overflow not reported")
	}
	if out.Len() > 101 {
		t.Fatalf("materialised %d rows past the limit", out.Len())
	}
	// Under the limit: identical to Join.
	out, over = JoinLimited(a, b, 10_000)
	if over || out.Len() != 2500 {
		t.Fatalf("join = %d rows, over=%v", out.Len(), over)
	}
	lj, over := LeftJoinLimited(a, b, 100)
	if !over || lj.Len() > 101 {
		t.Fatalf("left join limit: %d rows, over=%v", lj.Len(), over)
	}
	// Zero means unlimited.
	if out, over := JoinLimited(a, b, 0); over || out.Len() != 2500 {
		t.Fatal("zero limit must be unlimited")
	}
}
