// Package bindings implements the variable-binding machinery of
// G-CORE's semantics (§A.1 of the paper): bindings µ are partial
// functions from variables to graph objects and literals, and binding
// tables Ω are finite sets of bindings on which the evaluator applies
// the operators ∪ (union), ⋈ (join), ⋉ (semijoin), ∖ (antijoin) and
// the left-outer join ⟕ used by OPTIONAL.
//
// Tables are stored columnar: the schema interns each variable to a
// slot index and rows live in one flat row-major []value.Value backing
// array, with value.Absent marking unbound slots (µ is partial). Merge
// and row copies are slice copies, and the join family buckets rows by
// a uint64 hash of the shared slots (value.Value.Hash, consistent with
// value.Equal) with slot-wise equality confirmation on probe — no
// per-row maps, no string key building. The map-based Binding type
// remains the boundary representation: Add accepts it, Rows/RowBinding
// materialise it, so callers that want µ as a map still get one.
package bindings

import (
	"sort"
	"strconv"
	"strings"

	"gcore/internal/value"
)

// Binding is a binding µ: a partial function from variable names to
// values (node/edge/path references or literals). A variable that is
// absent from the map is unbound.
type Binding map[string]value.Value

// Empty is the binding µ∅ with empty domain; it is compatible with
// every binding and is the unit of the join.
func Empty() Binding { return Binding{} }

// Clone returns an independent copy of the binding.
func (b Binding) Clone() Binding {
	cp := make(Binding, len(b))
	for k, v := range b {
		cp[k] = v
	}
	return cp
}

// Vars returns the bound variable names (dom µ) in sorted order.
func (b Binding) Vars() []string {
	vs := make([]string, 0, len(b))
	for v := range b {
		vs = append(vs, v)
	}
	sort.Strings(vs)
	return vs
}

// Compatible reports µ1 ∼ µ2: agreement on every shared variable.
func Compatible(a, b Binding) bool {
	// Probe the smaller map.
	if len(b) < len(a) {
		a, b = b, a
	}
	for k, va := range a {
		if vb, ok := b[k]; ok && !value.Equal(va, vb) {
			return false
		}
	}
	return true
}

// Merge returns µ1 ∪ µ2 for compatible bindings.
func Merge(a, b Binding) Binding {
	out := make(Binding, len(a)+len(b))
	for k, v := range a {
		out[k] = v
	}
	for k, v := range b {
		out[k] = v
	}
	return out
}

// Key returns a canonical string for the binding restricted to vars;
// unbound variables contribute a distinguished marker. Equal
// restrictions yield equal keys, and distinct restrictions yield
// distinct keys: every fragment is length-prefixed, so a string value
// containing the separator characters cannot collide across slots.
func (b Binding) Key(vars []string) string {
	var sb strings.Builder
	for _, v := range vars {
		if val, ok := b[v]; ok {
			frag := val.Key()
			sb.WriteString(strconv.Itoa(len(frag)))
			sb.WriteByte(':')
			sb.WriteString(frag)
		} else {
			sb.WriteByte('?')
		}
		sb.WriteByte('|')
	}
	return sb.String()
}

// String renders the binding as {x↦v, ...} in variable order.
func (b Binding) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	for i, v := range b.Vars() {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(v)
		sb.WriteString("->")
		sb.WriteString(b[v].String())
	}
	sb.WriteByte('}')
	return sb.String()
}

// Table is a binding table Ω: a set of bindings together with the
// variables that may occur in them (its schema). The schema is the
// union of the variables of the contributing patterns; individual
// rows may leave schema variables unbound (OPTIONAL).
//
// Layout: vars is the sorted schema (variable → slot by binary
// search), data holds the rows back to back (row i occupies
// data[i*len(vars) : (i+1)*len(vars)]), and value.Absent marks
// unbound slots. n tracks the row count explicitly so zero-width
// tables (Unit) still know how many µ∅ rows they hold.
type Table struct {
	vars []string // sorted
	data []value.Value
	n    int
}

// NewTable creates a table with the given schema and rows.
func NewTable(vars []string, rows ...Binding) *Table {
	t := &Table{vars: normVars(vars)}
	for _, b := range rows {
		t.Add(b)
	}
	return t
}

// Unit returns the table {µ∅}: one row binding nothing. It is the
// starting Ω′ of a top-level MATCH (§A.5).
func Unit() *Table { return &Table{n: 1} }

// EmptyTable returns a table with no rows.
func EmptyTable(vars ...string) *Table { return &Table{vars: normVars(vars)} }

func normVars(vars []string) []string {
	vs := append([]string(nil), vars...)
	sort.Strings(vs)
	out := vs[:0]
	for i, v := range vs {
		if i == 0 || vs[i-1] != v {
			out = append(out, v)
		}
	}
	return out
}

// Vars returns the table's schema in sorted order.
func (t *Table) Vars() []string { return t.vars }

// Width returns the number of schema variables (slots per row).
func (t *Table) Width() int { return len(t.vars) }

// SlotOf returns the slot index of v in the schema, or -1.
func (t *Table) SlotOf(v string) int {
	i := sort.SearchStrings(t.vars, v)
	if i < len(t.vars) && t.vars[i] == v {
		return i
	}
	return -1
}

// HasVar reports whether v is part of the schema.
func (t *Table) HasVar(v string) bool { return t.SlotOf(v) >= 0 }

// Len returns |Ω|.
func (t *Table) Len() int { return t.n }

// RowAt returns row i as a slot-ordered slice; unbound slots hold
// value.Absent. The slice aliases the table and must not be modified.
func (t *Table) RowAt(i int) []value.Value {
	w := len(t.vars)
	return t.data[i*w : (i+1)*w : (i+1)*w]
}

// Value returns the value bound to name in row i; ok is false when the
// variable is unbound there (or not in the schema at all).
func (t *Table) Value(i int, name string) (value.Value, bool) {
	s := t.SlotOf(name)
	if s < 0 {
		return value.Null, false
	}
	v := t.data[i*len(t.vars)+s]
	if v.IsAbsent() {
		return value.Null, false
	}
	return v, true
}

// RowBinding materialises row i as a map binding (unbound slots are
// simply absent from the map).
func (t *Table) RowBinding(i int) Binding {
	b := make(Binding, len(t.vars))
	base := i * len(t.vars)
	for s, v := range t.vars {
		if val := t.data[base+s]; !val.IsAbsent() {
			b[v] = val
		}
	}
	return b
}

// RowTable returns a one-row table holding exactly the bound variables
// of row i — the outer table of a correlated subquery.
func (t *Table) RowTable(i int) *Table {
	base := i * len(t.vars)
	var vars []string
	for s, v := range t.vars {
		if !t.data[base+s].IsAbsent() {
			vars = append(vars, v)
		}
	}
	out := &Table{vars: vars} // already sorted: subsequence of a sorted schema
	for s, v := range t.vars {
		_ = v
		if val := t.data[base+s]; !val.IsAbsent() {
			out.data = append(out.data, val)
		}
	}
	out.n = 1
	return out
}

// Rows materialises every row as a map binding. Each call builds fresh
// maps; callers iterating large tables should prefer RowAt/Value.
func (t *Table) Rows() []Binding {
	out := make([]Binding, t.n)
	for i := 0; i < t.n; i++ {
		out[i] = t.RowBinding(i)
	}
	return out
}

// Add appends a row given as a map binding. Variables outside the
// schema are dropped (the schema is fixed at table creation).
func (t *Table) Add(b Binding) {
	for _, v := range t.vars {
		if val, ok := b[v]; ok {
			t.data = append(t.data, val)
		} else {
			t.data = append(t.data, value.Absent)
		}
	}
	t.n++
}

// AppendRow appends one dense row given in slot order (value.Absent
// marks unbound slots). The slice is copied.
func (t *Table) AppendRow(row []value.Value) {
	t.data = append(t.data, row...)
	t.n++
}

// AppendSlab appends len(slab)/Width() rows laid out back to back in
// slot order — the merge step of chunked parallel row production.
func (t *Table) AppendSlab(slab []value.Value) {
	if len(t.vars) == 0 {
		return
	}
	t.data = append(t.data, slab...)
	t.n += len(slab) / len(t.vars)
}

// Pick returns a new table holding the given rows, in the given order.
func (t *Table) Pick(rows []int) *Table {
	out := &Table{vars: t.vars, n: len(rows)}
	w := len(t.vars)
	out.data = make([]value.Value, 0, len(rows)*w)
	for _, i := range rows {
		out.data = append(out.data, t.data[i*w:(i+1)*w]...)
	}
	return out
}

// WithOrdinal returns a copy of the table extended by a column binding
// name to the row's current ordinal. The evaluator uses it to tag rows
// before a reordered join so the textual emission order can be
// restored afterwards.
func (t *Table) WithOrdinal(name string) *Table {
	out := EmptyTable(append([]string{name}, t.vars...)...)
	w, ow := len(t.vars), len(out.vars)
	slot := out.SlotOf(name)
	mapTo := slotMapping(t.vars, out.vars)
	out.data = make([]value.Value, t.n*ow)
	for i := range out.data {
		out.data[i] = value.Absent
	}
	for i := 0; i < t.n; i++ {
		dst := out.data[i*ow : (i+1)*ow]
		src := t.data[i*w : (i+1)*w]
		for s, v := range src {
			dst[mapTo[s]] = v
		}
		dst[slot] = value.Int(int64(i))
	}
	out.n = t.n
	return out
}

// SortStableByVars returns a copy whose rows are stably sorted by
// value.Compare over the listed variables, in order.
func (t *Table) SortStableByVars(vars []string) *Table {
	slots := make([]int, 0, len(vars))
	for _, v := range vars {
		if s := t.SlotOf(v); s >= 0 {
			slots = append(slots, s)
		}
	}
	perm := make([]int, t.n)
	for i := range perm {
		perm[i] = i
	}
	w := len(t.vars)
	sort.SliceStable(perm, func(x, y int) bool {
		bi, bj := perm[x]*w, perm[y]*w
		for _, s := range slots {
			if c := value.Compare(t.data[bi+s], t.data[bj+s]); c != 0 {
				return c < 0
			}
		}
		return false
	})
	return t.Pick(perm)
}

// DropVars returns a copy of the table without the listed variables.
func (t *Table) DropVars(names ...string) *Table {
	drop := map[string]bool{}
	for _, n := range names {
		drop[n] = true
	}
	keep := make([]string, 0, len(t.vars))
	for _, v := range t.vars {
		if !drop[v] {
			keep = append(keep, v)
		}
	}
	return t.Project(keep)
}

// sharedVars returns the schema intersection of two tables.
func sharedVars(a, b *Table) []string {
	out := []string{}
	for _, v := range a.vars {
		if b.HasVar(v) {
			out = append(out, v)
		}
	}
	return out
}

func unionVars(a, b *Table) []string {
	return normVars(append(append([]string(nil), a.vars...), b.vars...))
}

// slotsOf maps variable names to their slots in t (all must exist).
func slotsOf(t *Table, vars []string) []int {
	out := make([]int, len(vars))
	for i, v := range vars {
		out[i] = t.SlotOf(v)
	}
	return out
}

// slotMapping maps each slot of src to its slot in dst (src ⊆ dst).
func slotMapping(src, dst []string) []int {
	out := make([]int, len(src))
	j := 0
	for i, v := range src {
		for dst[j] != v {
			j++
		}
		out[i] = j
	}
	return out
}

// absentTemplate is an all-Absent row used to grow output slabs.
func absentTemplate(w int) []value.Value {
	tmpl := make([]value.Value, w)
	for i := range tmpl {
		tmpl[i] = value.Absent
	}
	return tmpl
}

// rowBoundAll reports whether row i binds every listed slot.
func (t *Table) rowBoundAll(i int, slots []int) bool {
	base := i * len(t.vars)
	for _, s := range slots {
		if t.data[base+s].IsAbsent() {
			return false
		}
	}
	return true
}

// rowHash folds the listed slots of row i into a hash consistent with
// slot-wise value.Equal (Absent carries its own tag).
func (t *Table) rowHash(i int, slots []int) uint64 {
	h := value.HashSeed()
	base := i * len(t.vars)
	for _, s := range slots {
		h = t.data[base+s].Hash(h)
	}
	return h
}

// rowsEqualOn reports slot-wise equality (Absent equals only Absent) —
// the confirmation step after a hash bucket hit, and row identity for
// Union/Distinct/GroupBy.
func rowsEqualOn(a *Table, i int, aSlots []int, b *Table, j int, bSlots []int) bool {
	ab, bb := i*len(a.vars), j*len(b.vars)
	for k := range aSlots {
		if !value.Equal(a.data[ab+aSlots[k]], b.data[bb+bSlots[k]]) {
			return false
		}
	}
	return true
}

// rowsCompatibleOn reports µ1 ∼ µ2 over the shared slots: a slot
// unbound on either side constrains nothing.
func rowsCompatibleOn(a *Table, i int, aSlots []int, b *Table, j int, bSlots []int) bool {
	ab, bb := i*len(a.vars), j*len(b.vars)
	for k := range aSlots {
		va, vb := a.data[ab+aSlots[k]], b.data[bb+bSlots[k]]
		if va.IsAbsent() || vb.IsAbsent() {
			continue
		}
		if !value.Equal(va, vb) {
			return false
		}
	}
	return true
}

// appendLegacyOrderKey appends the pre-columnar Binding.Key encoding
// of the listed slots: value.Key fragments (or '?') joined by '|'.
// It is NOT collision-free and is used only for ordering — Sorted and
// group ordering must keep producing byte-identical output, and the
// historical order is the lexicographic order of exactly this string.
func (t *Table) appendLegacyOrderKey(sb *strings.Builder, i int, slots []int) {
	base := i * len(t.vars)
	for _, s := range slots {
		if v := t.data[base+s]; v.IsAbsent() {
			sb.WriteByte('?')
		} else {
			v.AppendKeyTo(sb)
		}
		sb.WriteByte('|')
	}
}

func (t *Table) legacyOrderKey(i int, slots []int) string {
	var sb strings.Builder
	t.appendLegacyOrderKey(&sb, i, slots)
	return sb.String()
}

// matcher indexes the rows of a table for compatibility probes on the
// shared variables with another table. Rows that bind all shared
// variables go into hash buckets (insertion order within a bucket);
// rows with unbound shared variables must be checked pairwise and are
// kept in a loose list.
type matcher struct {
	t           *Table
	slots       []int
	buckets     map[uint64][]int
	loose       []int
	denseSorted []int // lazily built for the unbound-left probe
	sortedBuilt bool
}

func newMatcher(t *Table, shared []string) *matcher {
	m := &matcher{t: t, slots: slotsOf(t, shared), buckets: map[uint64][]int{}}
	for j := 0; j < t.n; j++ {
		if t.rowBoundAll(j, m.slots) {
			h := t.rowHash(j, m.slots)
			m.buckets[h] = append(m.buckets[h], j)
		} else {
			m.loose = append(m.loose, j)
		}
	}
	return m
}

// denseInKeyOrder returns the fully-bound rows ordered by the legacy
// key of their shared slots (ties in insertion order) — the candidate
// order the pre-columnar implementation produced for a left row that
// leaves a shared variable unbound, preserved so row emission order
// (and therefore constructed-object identities downstream) does not
// change.
func (m *matcher) denseInKeyOrder() []int {
	if m.sortedBuilt {
		return m.denseSorted
	}
	m.sortedBuilt = true
	for j := 0; j < m.t.n; j++ {
		if m.t.rowBoundAll(j, m.slots) {
			m.denseSorted = append(m.denseSorted, j)
		}
	}
	keys := make([]string, len(m.denseSorted))
	for k, j := range m.denseSorted {
		keys[k] = m.t.legacyOrderKey(j, m.slots)
	}
	perm := make([]int, len(m.denseSorted))
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(x, y int) bool { return keys[perm[x]] < keys[perm[y]] })
	sorted := make([]int, len(perm))
	for k, pi := range perm {
		sorted[k] = m.denseSorted[pi]
	}
	m.denseSorted = sorted
	return m.denseSorted
}

// Union returns Ω1 ∪ Ω2 (duplicate rows are collapsed: Ω is a set).
func Union(a, b *Table) *Table {
	out := &Table{vars: unionVars(a, b)}
	w := len(out.vars)
	tmpl := absentTemplate(w)
	outSlots := make([]int, w)
	for i := range outSlots {
		outSlots[i] = i
	}
	seen := map[uint64][]int{}
	scratch := make([]value.Value, w)
	for _, t := range []*Table{a, b} {
		mapTo := slotMapping(t.vars, out.vars)
		tw := len(t.vars)
		for i := 0; i < t.n; i++ {
			copy(scratch, tmpl)
			src := t.data[i*tw : (i+1)*tw]
			for s, v := range src {
				scratch[mapTo[s]] = v
			}
			h := value.HashSeed()
			for _, v := range scratch {
				h = v.Hash(h)
			}
			dup := false
			for _, j := range seen[h] {
				if rowScratchEqual(out, j, scratch) {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			seen[h] = append(seen[h], out.n)
			out.data = append(out.data, scratch...)
			out.n++
		}
	}
	return out
}

func rowScratchEqual(t *Table, i int, scratch []value.Value) bool {
	base := i * len(t.vars)
	for s, v := range scratch {
		if !value.Equal(t.data[base+s], v) {
			return false
		}
	}
	return true
}

// Join returns Ω1 ⋈ Ω2 = {µ1 ∪ µ2 | µ1 ∼ µ2}.
func Join(a, b *Table) *Table {
	out, _ := JoinLimited(a, b, 0)
	return out
}

// JoinLimited is Join with a row budget: materialisation stops as
// soon as the output exceeds max rows (0 = unlimited) and the second
// result reports the overflow. Stopping *inside* the join matters:
// an adversarial cartesian product must not be allocated before a
// caller-side check can reject it.
func JoinLimited(a, b *Table, max int) (*Table, bool) {
	out, _, over := joinCore(a, b, max, false)
	return out, over
}

// LeftJoin returns Ω1 ⟕ Ω2 = (Ω1 ⋈ Ω2) ∪ (Ω1 ∖ Ω2): the operator the
// paper writes as the overlined join and uses for OPTIONAL.
func LeftJoin(a, b *Table) *Table {
	out, _ := LeftJoinLimited(a, b, 0)
	return out
}

// LeftJoinLimited is LeftJoin with the same row budget semantics as
// JoinLimited.
func LeftJoinLimited(a, b *Table, max int) (*Table, bool) {
	out, _, over := joinCore(a, b, max, true)
	return out, over
}

// joinCore drives Join and LeftJoin: per left row (in order), the
// hash-bucket candidates in right-insertion order, then the loose
// rows; a left row missing a shared variable probes the loose rows
// first and then every dense row in legacy key order — reproducing
// the pre-columnar emission order exactly.
func joinCore(a, b *Table, max int, left bool) (*Table, int, bool) {
	out := &Table{vars: unionVars(a, b)}
	w := len(out.vars)
	shared := sharedVars(a, b)
	aS, bS := slotsOf(a, shared), slotsOf(b, shared)
	m := newMatcher(b, shared)
	aMap := slotMapping(a.vars, out.vars)
	bMap := slotMapping(b.vars, out.vars)
	tmpl := absentTemplate(w)
	aw, bw := len(a.vars), len(b.vars)

	emit := func(i, j int) bool {
		start := len(out.data)
		out.data = append(out.data, tmpl...)
		row := out.data[start : start+w]
		src := a.data[i*aw : (i+1)*aw]
		for s, v := range src {
			row[aMap[s]] = v
		}
		if j >= 0 {
			src = b.data[j*bw : (j+1)*bw]
			for s, v := range src {
				if !v.IsAbsent() {
					row[bMap[s]] = v
				}
			}
		}
		out.n++
		return max > 0 && out.n > max
	}

	for i := 0; i < a.n; i++ {
		matched := false
		if a.rowBoundAll(i, aS) {
			h := a.rowHash(i, aS)
			for _, j := range m.buckets[h] {
				if rowsEqualOn(a, i, aS, b, j, bS) {
					matched = true
					if emit(i, j) {
						return out, i, true
					}
				}
			}
			for _, j := range m.loose {
				if rowsCompatibleOn(a, i, aS, b, j, bS) {
					matched = true
					if emit(i, j) {
						return out, i, true
					}
				}
			}
		} else {
			for _, j := range m.loose {
				if rowsCompatibleOn(a, i, aS, b, j, bS) {
					matched = true
					if emit(i, j) {
						return out, i, true
					}
				}
			}
			for _, j := range m.denseInKeyOrder() {
				if rowsCompatibleOn(a, i, aS, b, j, bS) {
					matched = true
					if emit(i, j) {
						return out, i, true
					}
				}
			}
		}
		if left && !matched {
			if emit(i, -1) {
				return out, i, true
			}
		}
	}
	return out, a.n, false
}

// SemiJoin returns Ω1 ⋉ Ω2 = {µ1 | ∃µ2 ∈ Ω2 : µ1 ∼ µ2}.
func SemiJoin(a, b *Table) *Table {
	return semi(a, b, true)
}

// AntiJoin returns Ω1 ∖ Ω2 = {µ1 | ∄µ2 ∈ Ω2 : µ1 ∼ µ2}.
func AntiJoin(a, b *Table) *Table {
	return semi(a, b, false)
}

func semi(a, b *Table, keepMatched bool) *Table {
	out := &Table{vars: a.vars}
	shared := sharedVars(a, b)
	aS, bS := slotsOf(a, shared), slotsOf(b, shared)
	m := newMatcher(b, shared)
	aw := len(a.vars)
	for i := 0; i < a.n; i++ {
		matched := false
		if a.rowBoundAll(i, aS) {
			h := a.rowHash(i, aS)
			for _, j := range m.buckets[h] {
				if rowsEqualOn(a, i, aS, b, j, bS) {
					matched = true
					break
				}
			}
			if !matched {
				for _, j := range m.loose {
					if rowsCompatibleOn(a, i, aS, b, j, bS) {
						matched = true
						break
					}
				}
			}
		} else {
			for j := 0; j < b.n && !matched; j++ {
				matched = rowsCompatibleOn(a, i, aS, b, j, bS)
			}
		}
		if matched == keepMatched {
			out.data = append(out.data, a.data[i*aw:(i+1)*aw]...)
			out.n++
		}
	}
	return out
}

// Filter keeps the rows for which pred returns true; the first error
// aborts. The predicate receives each row materialised as a map.
func (t *Table) Filter(pred func(Binding) (bool, error)) (*Table, error) {
	out := &Table{vars: t.vars}
	w := len(t.vars)
	for i := 0; i < t.n; i++ {
		ok, err := pred(t.RowBinding(i))
		if err != nil {
			return nil, err
		}
		if ok {
			out.data = append(out.data, t.data[i*w:(i+1)*w]...)
			out.n++
		}
	}
	return out, nil
}

// Project restricts every row (and the schema) to vars.
func (t *Table) Project(vars []string) *Table {
	keep := normVars(vars)
	out := &Table{vars: keep, n: t.n}
	srcSlot := make([]int, len(keep))
	for i, v := range keep {
		srcSlot[i] = t.SlotOf(v)
	}
	w := len(t.vars)
	out.data = make([]value.Value, 0, t.n*len(keep))
	for i := 0; i < t.n; i++ {
		base := i * w
		for _, s := range srcSlot {
			if s < 0 {
				out.data = append(out.data, value.Absent)
			} else {
				out.data = append(out.data, t.data[base+s])
			}
		}
	}
	return out
}

// Distinct collapses duplicate rows (slot-wise equality; unbound
// equals only unbound), keeping first occurrences in order.
func (t *Table) Distinct() *Table {
	out := &Table{vars: t.vars}
	w := len(t.vars)
	all := make([]int, w)
	for i := range all {
		all[i] = i
	}
	seen := map[uint64][]int{}
	for i := 0; i < t.n; i++ {
		h := t.rowHash(i, all)
		dup := false
		for _, j := range seen[h] {
			if rowsEqualOn(t, i, all, t, j, all) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		seen[h] = append(seen[h], i)
		out.data = append(out.data, t.data[i*w:(i+1)*w]...)
		out.n++
	}
	return out
}

// Sorted returns a copy whose rows are in canonical order — the
// lexicographic order of the legacy row keys over the schema, which
// is what deterministic output has always used ("N1" < "N10" < "N2").
func (t *Table) Sorted() *Table {
	all := make([]int, len(t.vars))
	for i := range all {
		all[i] = i
	}
	keys := make([]string, t.n)
	for i := 0; i < t.n; i++ {
		keys[i] = t.legacyOrderKey(i, all)
	}
	perm := make([]int, t.n)
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(x, y int) bool { return keys[perm[x]] < keys[perm[y]] })
	return t.Pick(perm)
}

// Group is one equivalence class of grp(Ω, g) (§A.3): the rows of Ω
// that agree on the grouping variables, with Key the projection
// Ω′(Γ).
type Group struct {
	Key  Binding
	Rows []Binding
}

// GroupBy partitions the table by the grouping set Γ. Groups are
// returned in canonical key order. Rows that leave a grouping variable
// unbound group under the unbound marker, mirroring how Ω′(x) may be
// undefined in §A.3.
func (t *Table) GroupBy(gamma []string) []Group {
	gs := normVars(gamma)
	slots := make([]int, 0, len(gs))
	missing := 0
	for _, v := range gs {
		if s := t.SlotOf(v); s >= 0 {
			slots = append(slots, s)
		} else {
			missing++ // grouping var outside the schema: always unbound
		}
	}
	type grp struct {
		rep  int
		rows []int
	}
	var groups []grp
	idx := map[uint64][]int{}
	for i := 0; i < t.n; i++ {
		h := t.rowHash(i, slots)
		gi := -1
		for _, j := range idx[h] {
			if rowsEqualOn(t, i, slots, t, groups[j].rep, slots) {
				gi = j
				break
			}
		}
		if gi < 0 {
			gi = len(groups)
			idx[h] = append(idx[h], gi)
			groups = append(groups, grp{rep: i})
		}
		groups[gi].rows = append(groups[gi].rows, i)
	}
	// Order groups by the legacy key of the representative restricted
	// to Γ (missing grouping vars contribute the unbound marker), the
	// historical canonical order.
	keys := make([]string, len(groups))
	for i, g := range groups {
		var sb strings.Builder
		t.appendLegacyOrderKey(&sb, g.rep, slots)
		for k := 0; k < missing; k++ {
			sb.WriteString("?|")
		}
		keys[i] = sb.String()
	}
	perm := make([]int, len(groups))
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(x, y int) bool { return keys[perm[x]] < keys[perm[y]] })
	out := make([]Group, len(groups))
	for oi, pi := range perm {
		g := groups[pi]
		key := Binding{}
		base := g.rep * len(t.vars)
		for k, v := range gs {
			_ = k
			if s := t.SlotOf(v); s >= 0 {
				if val := t.data[base+s]; !val.IsAbsent() {
					key[v] = val
				}
			}
		}
		rows := make([]Binding, len(g.rows))
		for k, ri := range g.rows {
			rows[k] = t.RowBinding(ri)
		}
		out[oi] = Group{Key: key, Rows: rows}
	}
	return out
}

// AddVars widens the schema (used when the evaluator introduces
// variables such as construct variables); existing rows leave the new
// variables unbound.
func (t *Table) AddVars(vars ...string) {
	nv := normVars(append(append([]string(nil), t.vars...), vars...))
	if len(nv) == len(t.vars) {
		t.vars = nv
		return
	}
	mapTo := slotMapping(t.vars, nv)
	nw := len(nv)
	nd := make([]value.Value, t.n*nw)
	for i := range nd {
		nd[i] = value.Absent
	}
	w := len(t.vars)
	for i := 0; i < t.n; i++ {
		src := t.data[i*w : (i+1)*w]
		dst := nd[i*nw : (i+1)*nw]
		for s, v := range src {
			dst[mapTo[s]] = v
		}
	}
	t.vars, t.data = nv, nd
}

// String renders the table for diagnostics: header then rows in
// current order.
func (t *Table) String() string {
	var sb strings.Builder
	sb.WriteString(strings.Join(t.vars, "\t"))
	sb.WriteByte('\n')
	w := len(t.vars)
	for i := 0; i < t.n; i++ {
		base := i * w
		for s := range t.vars {
			if s > 0 {
				sb.WriteByte('\t')
			}
			if v := t.data[base+s]; v.IsAbsent() {
				sb.WriteString("·")
			} else {
				sb.WriteString(v.String())
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
