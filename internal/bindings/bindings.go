// Package bindings implements the variable-binding machinery of
// G-CORE's semantics (§A.1 of the paper): bindings µ are partial
// functions from variables to graph objects and literals, and binding
// tables Ω are finite sets of bindings on which the evaluator applies
// the operators ∪ (union), ⋈ (join), ⋉ (semijoin), ∖ (antijoin) and
// the left-outer join ⟕ used by OPTIONAL.
package bindings

import (
	"sort"
	"strings"

	"gcore/internal/value"
)

// Binding is a binding µ: a partial function from variable names to
// values (node/edge/path references or literals). A variable that is
// absent from the map is unbound.
type Binding map[string]value.Value

// Empty is the binding µ∅ with empty domain; it is compatible with
// every binding and is the unit of the join.
func Empty() Binding { return Binding{} }

// Clone returns an independent copy of the binding.
func (b Binding) Clone() Binding {
	cp := make(Binding, len(b))
	for k, v := range b {
		cp[k] = v
	}
	return cp
}

// Vars returns the bound variable names (dom µ) in sorted order.
func (b Binding) Vars() []string {
	vs := make([]string, 0, len(b))
	for v := range b {
		vs = append(vs, v)
	}
	sort.Strings(vs)
	return vs
}

// Compatible reports µ1 ∼ µ2: agreement on every shared variable.
func Compatible(a, b Binding) bool {
	// Probe the smaller map.
	if len(b) < len(a) {
		a, b = b, a
	}
	for k, va := range a {
		if vb, ok := b[k]; ok && !value.Equal(va, vb) {
			return false
		}
	}
	return true
}

// Merge returns µ1 ∪ µ2 for compatible bindings.
func Merge(a, b Binding) Binding {
	out := make(Binding, len(a)+len(b))
	for k, v := range a {
		out[k] = v
	}
	for k, v := range b {
		out[k] = v
	}
	return out
}

// Key returns a canonical string for the binding restricted to vars;
// unbound variables contribute a distinguished marker. Equal
// restrictions yield equal keys.
func (b Binding) Key(vars []string) string {
	var sb strings.Builder
	for _, v := range vars {
		if val, ok := b[v]; ok {
			sb.WriteString(val.Key())
		} else {
			sb.WriteByte('?')
		}
		sb.WriteByte('|')
	}
	return sb.String()
}

// String renders the binding as {x↦v, ...} in variable order.
func (b Binding) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	for i, v := range b.Vars() {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(v)
		sb.WriteString("->")
		sb.WriteString(b[v].String())
	}
	sb.WriteByte('}')
	return sb.String()
}

// Table is a binding table Ω: a set of bindings together with the
// variables that may occur in them (its schema). The schema is the
// union of the variables of the contributing patterns; individual
// rows may leave schema variables unbound (OPTIONAL).
type Table struct {
	vars []string // sorted
	rows []Binding
}

// NewTable creates a table with the given schema and rows.
func NewTable(vars []string, rows ...Binding) *Table {
	t := &Table{vars: normVars(vars)}
	t.rows = append(t.rows, rows...)
	return t
}

// Unit returns the table {µ∅}: one row binding nothing. It is the
// starting Ω′ of a top-level MATCH (§A.5).
func Unit() *Table { return &Table{rows: []Binding{Empty()}} }

// EmptyTable returns a table with no rows.
func EmptyTable(vars ...string) *Table { return &Table{vars: normVars(vars)} }

func normVars(vars []string) []string {
	vs := append([]string(nil), vars...)
	sort.Strings(vs)
	out := vs[:0]
	for i, v := range vs {
		if i == 0 || vs[i-1] != v {
			out = append(out, v)
		}
	}
	return out
}

// Vars returns the table's schema in sorted order.
func (t *Table) Vars() []string { return t.vars }

// HasVar reports whether v is part of the schema.
func (t *Table) HasVar(v string) bool {
	i := sort.SearchStrings(t.vars, v)
	return i < len(t.vars) && t.vars[i] == v
}

// Rows returns the rows; the slice must not be modified.
func (t *Table) Rows() []Binding { return t.rows }

// Len returns |Ω|.
func (t *Table) Len() int { return len(t.rows) }

// Add appends a row.
func (t *Table) Add(b Binding) { t.rows = append(t.rows, b) }

// sharedVars returns the schema intersection of two tables.
func sharedVars(a, b *Table) []string {
	out := []string{}
	for _, v := range a.vars {
		if b.HasVar(v) {
			out = append(out, v)
		}
	}
	return out
}

func unionVars(a, b *Table) []string {
	return normVars(append(append([]string(nil), a.vars...), b.vars...))
}

// Union returns Ω1 ∪ Ω2 (duplicate rows are collapsed: Ω is a set).
func Union(a, b *Table) *Table {
	out := &Table{vars: unionVars(a, b)}
	seen := map[string]bool{}
	for _, t := range []*Table{a, b} {
		for _, r := range t.rows {
			k := r.Key(out.vars)
			if !seen[k] {
				seen[k] = true
				out.rows = append(out.rows, r)
			}
		}
	}
	return out
}

// boundAll reports whether r binds every variable in vars.
func boundAll(r Binding, vars []string) bool {
	for _, v := range vars {
		if _, ok := r[v]; !ok {
			return false
		}
	}
	return true
}

// matcher indexes the rows of a table for compatibility probes on the
// shared variables with another table. Rows that bind all shared
// variables go into hash buckets; rows with unbound shared variables
// must be checked pairwise and are kept in a loose list.
type matcher struct {
	shared  []string
	buckets map[string][]Binding
	loose   []Binding
}

func newMatcher(t *Table, shared []string) *matcher {
	m := &matcher{shared: shared, buckets: map[string][]Binding{}}
	for _, r := range t.rows {
		if boundAll(r, shared) {
			k := r.Key(shared)
			m.buckets[k] = append(m.buckets[k], r)
		} else {
			m.loose = append(m.loose, r)
		}
	}
	return m
}

// candidates yields the rows possibly compatible with l; each still
// needs a Compatible check (bucket equality only covers shared vars
// bound on both sides).
func (m *matcher) candidates(l Binding) []Binding {
	if boundAll(l, m.shared) {
		out := m.buckets[l.Key(m.shared)]
		if len(m.loose) == 0 {
			return out
		}
		return append(append([]Binding(nil), out...), m.loose...)
	}
	// l leaves a shared variable unbound: every row may match.
	all := make([]Binding, 0, len(m.loose)+len(m.buckets))
	all = append(all, m.loose...)
	keys := make([]string, 0, len(m.buckets))
	for k := range m.buckets {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		all = append(all, m.buckets[k]...)
	}
	return all
}

// Join returns Ω1 ⋈ Ω2 = {µ1 ∪ µ2 | µ1 ∼ µ2}.
func Join(a, b *Table) *Table {
	out, _ := JoinLimited(a, b, 0)
	return out
}

// JoinLimited is Join with a row budget: materialisation stops as
// soon as the output exceeds max rows (0 = unlimited) and the second
// result reports the overflow. Stopping *inside* the join matters:
// an adversarial cartesian product must not be allocated before a
// caller-side check can reject it.
func JoinLimited(a, b *Table, max int) (*Table, bool) {
	out := &Table{vars: unionVars(a, b)}
	m := newMatcher(b, sharedVars(a, b))
	for _, l := range a.rows {
		for _, r := range m.candidates(l) {
			if Compatible(l, r) {
				out.rows = append(out.rows, Merge(l, r))
				if max > 0 && len(out.rows) > max {
					return out, true
				}
			}
		}
	}
	return out, false
}

// SemiJoin returns Ω1 ⋉ Ω2 = {µ1 | ∃µ2 ∈ Ω2 : µ1 ∼ µ2}.
func SemiJoin(a, b *Table) *Table {
	out := &Table{vars: a.vars}
	m := newMatcher(b, sharedVars(a, b))
	for _, l := range a.rows {
		for _, r := range m.candidates(l) {
			if Compatible(l, r) {
				out.rows = append(out.rows, l)
				break
			}
		}
	}
	return out
}

// AntiJoin returns Ω1 ∖ Ω2 = {µ1 | ∄µ2 ∈ Ω2 : µ1 ∼ µ2}.
func AntiJoin(a, b *Table) *Table {
	out := &Table{vars: a.vars}
	m := newMatcher(b, sharedVars(a, b))
outer:
	for _, l := range a.rows {
		for _, r := range m.candidates(l) {
			if Compatible(l, r) {
				continue outer
			}
		}
		out.rows = append(out.rows, l)
	}
	return out
}

// LeftJoin returns Ω1 ⟕ Ω2 = (Ω1 ⋈ Ω2) ∪ (Ω1 ∖ Ω2): the operator the
// paper writes as the overlined join and uses for OPTIONAL.
func LeftJoin(a, b *Table) *Table {
	out, _ := LeftJoinLimited(a, b, 0)
	return out
}

// LeftJoinLimited is LeftJoin with the same row budget semantics as
// JoinLimited.
func LeftJoinLimited(a, b *Table, max int) (*Table, bool) {
	out := &Table{vars: unionVars(a, b)}
	m := newMatcher(b, sharedVars(a, b))
	for _, l := range a.rows {
		matched := false
		for _, r := range m.candidates(l) {
			if Compatible(l, r) {
				matched = true
				out.rows = append(out.rows, Merge(l, r))
				if max > 0 && len(out.rows) > max {
					return out, true
				}
			}
		}
		if !matched {
			out.rows = append(out.rows, l)
			if max > 0 && len(out.rows) > max {
				return out, true
			}
		}
	}
	return out, false
}

// Filter keeps the rows for which pred returns true; the first error
// aborts.
func (t *Table) Filter(pred func(Binding) (bool, error)) (*Table, error) {
	out := &Table{vars: t.vars}
	for _, r := range t.rows {
		ok, err := pred(r)
		if err != nil {
			return nil, err
		}
		if ok {
			out.rows = append(out.rows, r)
		}
	}
	return out, nil
}

// Project restricts every row (and the schema) to vars.
func (t *Table) Project(vars []string) *Table {
	keep := normVars(vars)
	out := &Table{vars: keep}
	for _, r := range t.rows {
		nr := Binding{}
		for _, v := range keep {
			if val, ok := r[v]; ok {
				nr[v] = val
			}
		}
		out.rows = append(out.rows, nr)
	}
	return out
}

// Distinct collapses duplicate rows.
func (t *Table) Distinct() *Table {
	out := &Table{vars: t.vars}
	seen := map[string]bool{}
	for _, r := range t.rows {
		k := r.Key(t.vars)
		if !seen[k] {
			seen[k] = true
			out.rows = append(out.rows, r)
		}
	}
	return out
}

// Sorted returns a copy whose rows are in canonical order (by the
// binding keys over the schema), for deterministic output.
func (t *Table) Sorted() *Table {
	out := &Table{vars: t.vars, rows: append([]Binding(nil), t.rows...)}
	sort.SliceStable(out.rows, func(i, j int) bool {
		return out.rows[i].Key(out.vars) < out.rows[j].Key(out.vars)
	})
	return out
}

// Group is one equivalence class of grp(Ω, g) (§A.3): the rows of Ω
// that agree on the grouping variables, with Key the projection
// Ω′(Γ).
type Group struct {
	Key  Binding
	Rows []Binding
}

// GroupBy partitions the table by the grouping set Γ. Groups are
// returned in canonical key order. Rows that leave a grouping variable
// unbound group under the unbound marker, mirroring how Ω′(x) may be
// undefined in §A.3.
func (t *Table) GroupBy(gamma []string) []Group {
	gs := normVars(gamma)
	idx := map[string]int{}
	groups := []Group{}
	for _, r := range t.rows {
		k := r.Key(gs)
		i, ok := idx[k]
		if !ok {
			key := Binding{}
			for _, v := range gs {
				if val, bound := r[v]; bound {
					key[v] = val
				}
			}
			i = len(groups)
			idx[k] = i
			groups = append(groups, Group{Key: key})
		}
		groups[i].Rows = append(groups[i].Rows, r)
	}
	sort.SliceStable(groups, func(i, j int) bool {
		return groups[i].Key.Key(gs) < groups[j].Key.Key(gs)
	})
	return groups
}

// AddVars widens the schema (used when the evaluator introduces
// variables such as construct variables).
func (t *Table) AddVars(vars ...string) {
	t.vars = normVars(append(t.vars, vars...))
}

// String renders the table for diagnostics: header then rows in
// current order.
func (t *Table) String() string {
	var sb strings.Builder
	sb.WriteString(strings.Join(t.vars, "\t"))
	sb.WriteByte('\n')
	for _, r := range t.rows {
		for i, v := range t.vars {
			if i > 0 {
				sb.WriteByte('\t')
			}
			if val, ok := r[v]; ok {
				sb.WriteString(val.String())
			} else {
				sb.WriteString("·")
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
