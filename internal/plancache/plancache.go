// Package plancache is a bounded LRU cache for compiled statements:
// parsed ASTs plus whatever the evaluator wants to remember alongside
// them (selectivity plans, compiled path-expression NFAs). Repeated
// query traffic is overwhelmingly repeated shapes, so the cache turns
// the per-statement lex/parse/analyze/plan cost into a map probe.
//
// Keys combine the normalised statement text with everything that
// legitimately changes the compiled form: the catalog version (graph,
// view and table registrations), the default graph's mutation
// generation, the resource-limit fingerprint and the parallelism
// setting. A graph mutation or catalog change therefore never serves
// a stale plan — the old key simply stops being produced and its
// entry ages out of the LRU.
//
// Concurrent misses of the same key are collapsed by a singleflight:
// the first caller compiles, the rest wait and share the result.
// Compile errors are returned to every waiter but never cached.
package plancache

import (
	"container/list"
	"strings"
	"sync"
	"time"
)

// DefaultCapacity bounds the cache when the caller does not choose.
const DefaultCapacity = 256

// Key identifies one compiled statement shape.
type Key struct {
	// Text is the normalised statement source (see Normalize).
	Text string
	// CatalogVersion counts catalog mutations (registrations, default
	// changes); any mutation retires all earlier entries.
	CatalogVersion uint64
	// Generation is the default graph's mutation generation.
	Generation uint64
	// Default is the session's default-graph override ("" = the
	// catalog default): plans compiled against different implicit
	// graphs are different plans.
	Default string
	// LimitsFP fingerprints the per-statement resource limits.
	LimitsFP string
	// Workers is the parallelism setting the plan was compiled under.
	Workers int
}

// Stats is a point-in-time view of cache effectiveness.
type Stats struct {
	Hits, Misses, Evictions int64
	// CompileTime is the total time spent compiling misses.
	CompileTime time.Duration
	Entries     int
	Capacity    int
}

// EntryInfo describes one live entry, for introspection (REPL \cache).
type EntryInfo struct {
	Text    string
	Hits    int64
	Compile time.Duration
}

type entry struct {
	key     Key
	val     any
	compile time.Duration
	hits    int64
}

type flight struct {
	done chan struct{}
	val  any
	d    time.Duration
	err  error
}

// Cache is the bounded LRU; safe for concurrent use.
type Cache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recently used
	items   map[Key]*list.Element
	flights map[Key]*flight

	hits, misses, evictions int64
	compileNS               int64
}

// New creates a cache bounded to capacity entries; capacity <= 0 uses
// DefaultCapacity.
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Cache{
		cap:     capacity,
		ll:      list.New(),
		items:   make(map[Key]*list.Element),
		flights: make(map[Key]*flight),
	}
}

// GetOrCompile returns the cached value for k, or runs compile once —
// even under concurrent misses of the same key — and caches its
// result. It reports the entry's compile duration (the cost a hit
// avoided, or a miss paid) and whether the call was served from cache.
// Waiters that share another caller's in-flight compilation count as
// hits: they did not compile. Errors are propagated, never cached.
func (c *Cache) GetOrCompile(k Key, compile func() (any, error)) (val any, d time.Duration, hit bool, err error) {
	c.mu.Lock()
	if el, ok := c.items[k]; ok {
		c.ll.MoveToFront(el)
		en := el.Value.(*entry)
		en.hits++
		c.hits++
		c.mu.Unlock()
		return en.val, en.compile, true, nil
	}
	if f, ok := c.flights[k]; ok {
		c.mu.Unlock()
		<-f.done
		if f.err != nil {
			return nil, 0, false, f.err
		}
		c.mu.Lock()
		c.hits++
		c.mu.Unlock()
		return f.val, f.d, true, nil
	}
	f := &flight{done: make(chan struct{})}
	c.flights[k] = f
	c.mu.Unlock()

	start := time.Now()
	f.val, f.err = compile()
	f.d = time.Since(start)

	c.mu.Lock()
	delete(c.flights, k)
	c.misses++
	c.compileNS += int64(f.d)
	if f.err == nil {
		c.insertLocked(k, f.val, f.d)
	}
	c.mu.Unlock()
	close(f.done)
	if f.err != nil {
		return nil, 0, false, f.err
	}
	return f.val, f.d, false, nil
}

// Get peeks at k without affecting hit/miss counters or LRU order.
func (c *Cache) Get(k Key) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		return el.Value.(*entry).val, true
	}
	return nil, false
}

// Remove drops k, if present. Used when an entry's revalidation fails.
func (c *Cache) Remove(k Key) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		c.ll.Remove(el)
		delete(c.items, k)
	}
}

// Invalidate drops every entry (counters survive).
func (c *Cache) Invalidate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = make(map[Key]*list.Element)
}

func (c *Cache) insertLocked(k Key, v any, compile time.Duration) {
	if el, ok := c.items[k]; ok {
		// A racing flight may have inserted between unlock and lock;
		// keep the existing entry current.
		c.ll.MoveToFront(el)
		return
	}
	c.items[k] = c.ll.PushFront(&entry{key: k, val: v, compile: compile})
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.items, back.Value.(*entry).key)
		c.evictions++
	}
}

// Stats returns current counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:        c.hits,
		Misses:      c.misses,
		Evictions:   c.evictions,
		CompileTime: time.Duration(c.compileNS),
		Entries:     c.ll.Len(),
		Capacity:    c.cap,
	}
}

// Entries lists live entries, most recently used first.
func (c *Cache) Entries() []EntryInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]EntryInfo, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		en := el.Value.(*entry)
		out = append(out, EntryInfo{Text: en.key.Text, Hits: en.hits, Compile: en.compile})
	}
	return out
}

// Normalize canonicalises statement text for keying: comments are
// dropped and whitespace runs collapse to a single space, except
// inside quoted strings, which are preserved byte-for-byte. Keyword
// case is left alone — identifiers are case-sensitive and a cheap
// normaliser cannot tell the two apart; differently-cased keywords
// just occupy separate entries.
func Normalize(src string) string {
	if normalized(src) {
		return src
	}
	var sb strings.Builder
	sb.Grow(len(src))
	pendingSpace := false
	i, n := 0, len(src)
	for i < n {
		ch := src[i]
		switch {
		case ch == ' ' || ch == '\t' || ch == '\n' || ch == '\r' || ch == '\v' || ch == '\f':
			pendingSpace = true
			i++
		case ch == '#':
			for i < n && src[i] != '\n' {
				i++
			}
			pendingSpace = true
		case ch == '/' && i+1 < n && src[i+1] == '*':
			i += 2
			for i < n {
				if src[i] == '*' && i+1 < n && src[i+1] == '/' {
					i += 2
					break
				}
				i++
			}
			pendingSpace = true
		case ch == '\'' || ch == '"':
			if pendingSpace && sb.Len() > 0 {
				sb.WriteByte(' ')
			}
			pendingSpace = false
			quote := ch
			sb.WriteByte(ch)
			i++
			for i < n {
				c := src[i]
				sb.WriteByte(c)
				i++
				if c == '\\' && i < n {
					sb.WriteByte(src[i])
					i++
					continue
				}
				if c == quote {
					// Doubled quote is an escaped quote; stay inside.
					if i < n && src[i] == quote {
						sb.WriteByte(src[i])
						i++
						continue
					}
					break
				}
			}
		default:
			if pendingSpace && sb.Len() > 0 {
				sb.WriteByte(' ')
			}
			pendingSpace = false
			sb.WriteByte(ch)
			i++
		}
	}
	return sb.String()
}

// normalized reports whether src is already in normal form, so
// Normalize can return it without copying — the common case on the
// hot probe path, where the same statement text arrives repeatedly.
// Conservative: a double space inside a string literal sends the text
// down the slow path, which preserves it correctly.
func normalized(src string) bool {
	if src == "" {
		return true
	}
	if src[0] == ' ' || src[len(src)-1] == ' ' {
		return false
	}
	prevSpace, prevSlash := false, false
	for i := 0; i < len(src); i++ {
		switch ch := src[i]; ch {
		case ' ':
			if prevSpace {
				return false
			}
			prevSpace, prevSlash = true, false
		case '\t', '\n', '\r', '\v', '\f', '#':
			return false
		case '*':
			if prevSlash {
				return false
			}
			prevSpace, prevSlash = false, false
		case '/':
			prevSpace, prevSlash = false, true
		default:
			prevSpace, prevSlash = false, false
		}
	}
	return true
}
