package plancache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func key(text string) Key { return Key{Text: text} }

func TestGetOrCompileHitMiss(t *testing.T) {
	c := New(4)
	compiles := 0
	compile := func() (any, error) { compiles++; return "plan", nil }

	v, _, hit, err := c.GetOrCompile(key("q1"), compile)
	if err != nil || hit || v != "plan" {
		t.Fatalf("first probe: v=%v hit=%v err=%v", v, hit, err)
	}
	v, _, hit, err = c.GetOrCompile(key("q1"), compile)
	if err != nil || !hit || v != "plan" {
		t.Fatalf("second probe: v=%v hit=%v err=%v", v, hit, err)
	}
	if compiles != 1 {
		t.Fatalf("compiles = %d", compiles)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestKeyComponentsSeparateEntries(t *testing.T) {
	c := New(8)
	keys := []Key{
		{Text: "q"},
		{Text: "q", CatalogVersion: 1},
		{Text: "q", Generation: 1},
		{Text: "q", LimitsFP: "x"},
		{Text: "q", Workers: 2},
	}
	for _, k := range keys {
		k := k
		if _, _, hit, _ := c.GetOrCompile(k, func() (any, error) { return k, nil }); hit {
			t.Fatalf("key %+v unexpectedly hit", k)
		}
	}
	if st := c.Stats(); st.Entries != len(keys) {
		t.Fatalf("entries = %d, want %d", st.Entries, len(keys))
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(2)
	for i := 0; i < 3; i++ {
		text := fmt.Sprintf("q%d", i)
		c.GetOrCompile(key(text), func() (any, error) { return text, nil })
	}
	// q0 is the least recently used and must be gone; q1, q2 remain.
	if _, ok := c.Get(key("q0")); ok {
		t.Fatal("q0 survived eviction")
	}
	for _, text := range []string{"q1", "q2"} {
		if _, ok := c.Get(key(text)); !ok {
			t.Fatalf("%s evicted", text)
		}
	}
	if st := c.Stats(); st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v", st)
	}

	// A hit refreshes recency: touch q1, insert q3 → q2 is evicted.
	c.GetOrCompile(key("q1"), func() (any, error) { return nil, errors.New("must not compile") })
	c.GetOrCompile(key("q3"), func() (any, error) { return "q3", nil })
	if _, ok := c.Get(key("q1")); !ok {
		t.Fatal("recently used q1 evicted")
	}
	if _, ok := c.Get(key("q2")); ok {
		t.Fatal("q2 survived eviction")
	}
}

func TestErrorsNotCached(t *testing.T) {
	c := New(4)
	boom := errors.New("boom")
	compiles := 0
	for i := 0; i < 2; i++ {
		_, _, _, err := c.GetOrCompile(key("bad"), func() (any, error) { compiles++; return nil, boom })
		if !errors.Is(err, boom) {
			t.Fatalf("err = %v", err)
		}
	}
	if compiles != 2 {
		t.Fatalf("compiles = %d: a failed compile was cached", compiles)
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("entries = %d", st.Entries)
	}
}

func TestInvalidateAndRemove(t *testing.T) {
	c := New(4)
	c.GetOrCompile(key("a"), func() (any, error) { return 1, nil })
	c.GetOrCompile(key("b"), func() (any, error) { return 2, nil })
	c.Remove(key("a"))
	if _, ok := c.Get(key("a")); ok {
		t.Fatal("a survived Remove")
	}
	c.Invalidate()
	if st := c.Stats(); st.Entries != 0 || st.Misses != 2 {
		t.Fatalf("stats after Invalidate = %+v", st)
	}
}

// TestSingleflight: concurrent misses for one key compile exactly
// once; the waiters all observe the winner's value and count as hits.
func TestSingleflight(t *testing.T) {
	c := New(4)
	const goroutines = 16
	var compiles atomic.Int64
	release := make(chan struct{})
	var wg sync.WaitGroup
	values := make([]any, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, _, err := c.GetOrCompile(key("hot"), func() (any, error) {
				compiles.Add(1)
				<-release // hold the flight open until all goroutines queue
				return "compiled", nil
			})
			if err != nil {
				t.Errorf("goroutine %d: %v", i, err)
			}
			values[i] = v
		}(i)
	}
	// Wait until the flight exists, then give the other goroutines a
	// moment to pile onto it before releasing the compile.
	for {
		c.mu.Lock()
		n := len(c.flights)
		c.mu.Unlock()
		if n == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(5 * time.Millisecond)
	close(release)
	wg.Wait()
	if n := compiles.Load(); n != 1 {
		t.Fatalf("compiles = %d, want 1", n)
	}
	for i, v := range values {
		if v != "compiled" {
			t.Fatalf("goroutine %d saw %v", i, v)
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != goroutines-1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEntriesMRUFirst(t *testing.T) {
	c := New(4)
	c.GetOrCompile(key("first"), func() (any, error) { return 1, nil })
	c.GetOrCompile(key("second"), func() (any, error) { return 2, nil })
	c.GetOrCompile(key("first"), func() (any, error) { return nil, errors.New("no") })
	ens := c.Entries()
	if len(ens) != 2 || ens[0].Text != "first" || ens[1].Text != "second" {
		t.Fatalf("entries = %+v", ens)
	}
	if ens[0].Hits != 1 {
		t.Fatalf("first hits = %d", ens[0].Hits)
	}
}

func TestNormalize(t *testing.T) {
	cases := []struct{ in, want string }{
		{"MATCH (n)", "MATCH (n)"},
		{"  MATCH\t\t(n)\n", "MATCH (n)"},
		{"MATCH (n) # trailing comment\n", "MATCH (n)"},
		{"MATCH /* inline */ (n)", "MATCH (n)"},
		{"MATCH /* multi\nline */ (n)", "MATCH (n)"},
		{"MATCH (n) WHERE n.x = ' spaced  out '", "MATCH (n) WHERE n.x = ' spaced  out '"},
		{"WHERE n.x = '# not a comment'", "WHERE n.x = '# not a comment'"},
		{"WHERE n.x = 'it''s'", "WHERE n.x = 'it''s'"},
		{"WHERE n.x = 'a\\'b /* no */'", "WHERE n.x = 'a\\'b /* no */'"},
		{"", ""},
		{"# only a comment", ""},
	}
	for _, tc := range cases {
		if got := Normalize(tc.in); got != tc.want {
			t.Errorf("Normalize(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
	// Equivalent spellings share one normal form; different literals
	// must not.
	if Normalize("MATCH  (n)\n") != Normalize("MATCH (n)") {
		t.Error("whitespace variants diverge")
	}
	if Normalize("WHERE x = 'a'") == Normalize("WHERE x = 'a '") {
		t.Error("string literals were normalised")
	}
}
