// Package server is the HTTP/JSON front door of a G-CORE engine: the
// request handling behind cmd/gcored. It exposes query evaluation
// (POST /query), prepared statements (POST /prepare, POST /exec),
// session management (POST /session, DELETE /session/{id}), health
// and metrics (GET /healthz, GET /metrics) and the process expvar
// page (GET /debug/vars).
//
// Every network client maps to a gcore.Session, so per-client state —
// default graph, prepared-statement handles, limits — lives in the
// engine's session abstraction, identical to what library users get.
// Read-only statements from concurrent requests execute concurrently
// under the engine's shared read lock; mutating statements serialise.
//
// Admission control is layered: the server-level Limits apply to
// every session it creates, and a per-request timeout_ms may tighten
// (never exceed) the server's MaxTimeout cap. Request contexts are
// wired straight into evaluation governance, so a disconnected client
// or an expired deadline aborts the statement at its next checkpoint.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"log"
	"net/http"
	"strings"
	"time"

	"gcore"
)

// Backend is the engine surface the server needs: session creation
// and the metrics snapshot. *gcore.Engine and *gcore.DurableEngine
// both satisfy it.
type Backend interface {
	NewSession() *gcore.Session
	Metrics() gcore.Metrics
}

// Config tunes one Server; the zero value serves with no limits, a
// 5-minute session idle expiry and no slow-query log.
type Config struct {
	// Limits is the admission-control ceiling installed on every
	// session the server creates (zero fields = unlimited).
	Limits gcore.Limits
	// MaxTimeout caps the per-request timeout_ms override; requests
	// asking for more (or, when set, requests not asking at all) run
	// under this deadline. Zero leaves request timeouts uncapped.
	MaxTimeout time.Duration
	// SessionIdle expires sessions untouched for this long (their
	// prepared handles die with them). Zero means 5 minutes; negative
	// disables expiry.
	SessionIdle time.Duration
	// SlowQuery logs statements slower than this threshold ("slow
	// query" lines on Log). Zero disables the log.
	SlowQuery time.Duration
	// Log receives server lifecycle and slow-query lines; nil uses
	// the process default logger.
	Log *log.Logger
}

// Server handles the HTTP API over one backend. Create with New,
// mount via Handler (or serve with ListenAndServe from cmd/gcored),
// stop with Shutdown.
type Server struct {
	backend  Backend
	cfg      Config
	log      *log.Logger
	mux      *http.ServeMux
	sessions *registry

	// base is the server lifetime: it parents every request context,
	// so cancelling it (Shutdown's drain deadline) aborts in-flight
	// queries at their next governance checkpoint.
	base      context.Context
	cancelAll context.CancelFunc
}

// New creates a Server over backend.
func New(backend Backend, cfg Config) *Server {
	if cfg.SessionIdle == 0 {
		cfg.SessionIdle = 5 * time.Minute
	}
	logger := cfg.Log
	if logger == nil {
		logger = log.Default()
	}
	base, cancel := context.WithCancel(context.Background())
	s := &Server{
		backend:   backend,
		cfg:       cfg,
		log:       logger,
		sessions:  newRegistry(cfg.SessionIdle),
		base:      base,
		cancelAll: cancel,
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("POST /prepare", s.handlePrepare)
	mux.HandleFunc("POST /exec", s.handleExec)
	mux.HandleFunc("POST /session", s.handleSessionNew)
	mux.HandleFunc("DELETE /session/{id}", s.handleSessionClose)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.Handle("GET /debug/vars", expvar.Handler())
	s.mux = mux
	return s
}

// Handler returns the root handler (for httptest and custom servers).
func (s *Server) Handler() http.Handler { return s }

// ServeHTTP dispatches one request with the server-lifetime context
// spliced under the request's own, so both client disconnects and
// server shutdown cancel evaluation.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := mergeCancel(r.Context(), s.base)
	defer cancel()
	s.mux.ServeHTTP(w, r.WithContext(ctx))
}

// Close cancels every in-flight query and stops the session janitor.
// Shutdown drains first; Close is the hard stop.
func (s *Server) Close() {
	s.cancelAll()
	s.sessions.stop()
}

// mergeCancel derives a context from primary that is additionally
// cancelled when secondary ends.
func mergeCancel(primary, secondary context.Context) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(primary)
	stop := context.AfterFunc(secondary, cancel)
	return ctx, func() { stop(); cancel() }
}

// The request and response shapes. Every error response is
// {"error": "...", "kind": "..."} with the HTTP status mapped from
// the governance error kind.

type queryRequest struct {
	// Query is the statement — or semicolon-separated script — to
	// evaluate.
	Query string `json:"query"`
	// Session targets an existing session (optional; a sessionless
	// request runs in a fresh throwaway session).
	Session string `json:"session,omitempty"`
	// Graph overrides the default graph: for this request when
	// sessionless, persistently for the session otherwise.
	Graph string `json:"graph,omitempty"`
	// Params binds $name parameters (single-statement requests only).
	Params map[string]gcore.Value `json:"params,omitempty"`
	// TimeoutMS bounds this request's evaluation wall-clock time,
	// capped by the server's MaxTimeout.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Explain selects plan output: "plan" renders the static plan,
	// "analyze" executes and annotates it.
	Explain string `json:"explain,omitempty"`
}

type resultJSON struct {
	Graph json.RawMessage `json:"graph,omitempty"`
	Table json.RawMessage `json:"table,omitempty"`
	Plan  string          `json:"plan,omitempty"`
}

type queryResponse struct {
	Results   []resultJSON `json:"results"`
	ElapsedMS float64      `json:"elapsed_ms"`
	Session   string       `json:"session,omitempty"`
}

type sessionRequest struct {
	Graph     string `json:"graph,omitempty"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
}

type sessionResponse struct {
	Session string `json:"session"`
	Graph   string `json:"graph,omitempty"`
}

type prepareRequest struct {
	Session string `json:"session"`
	Query   string `json:"query"`
}

type prepareResponse struct {
	Handle  string   `json:"handle"`
	Params  []string `json:"params"`
	Session string   `json:"session"`
}

type execRequest struct {
	Session   string                 `json:"session"`
	Handle    string                 `json:"handle"`
	Params    map[string]gcore.Value `json:"params,omitempty"`
	TimeoutMS int64                  `json:"timeout_ms,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
	Kind  string `json:"kind,omitempty"`
}

// newSession builds a fresh session with the server's admission
// limits installed.
func (s *Server) newSession() *gcore.Session {
	sess := s.backend.NewSession()
	if s.cfg.Limits != (gcore.Limits{}) {
		sess.SetLimits(s.cfg.Limits)
	}
	return sess
}

// requestTimeout resolves the effective deadline of one request:
// the requested timeout capped by MaxTimeout; with no request
// timeout, MaxTimeout itself (zero = none).
func (s *Server) requestTimeout(ms int64) time.Duration {
	d := time.Duration(ms) * time.Millisecond
	if s.cfg.MaxTimeout > 0 && (d <= 0 || d > s.cfg.MaxTimeout) {
		d = s.cfg.MaxTimeout
	}
	if d < 0 {
		d = 0
	}
	return d
}

func (s *Server) withTimeout(ctx context.Context, ms int64) (context.Context, context.CancelFunc) {
	if d := s.requestTimeout(ms); d > 0 {
		return context.WithTimeout(ctx, d)
	}
	return ctx, func() {}
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if strings.TrimSpace(req.Query) == "" {
		writeError(w, http.StatusBadRequest, "empty query", "")
		return
	}
	var sess *gcore.Session
	var sid string
	if req.Session != "" {
		live := s.sessions.get(req.Session)
		if live == nil {
			writeError(w, http.StatusNotFound, fmt.Sprintf("unknown session %q", req.Session), "")
			return
		}
		sess, sid = live.sess, req.Session
	} else {
		sess = s.newSession()
	}
	if req.Graph != "" {
		if err := sess.SetDefaultGraph(req.Graph); err != nil {
			writeError(w, http.StatusNotFound, err.Error(), "")
			return
		}
	}
	ctx, cancel := s.withTimeout(r.Context(), req.TimeoutMS)
	defer cancel()

	start := time.Now()
	var results []*gcore.Result
	var err error
	switch req.Explain {
	case "":
		if len(req.Params) > 0 {
			var res *gcore.Result
			res, err = sess.EvalParamsContext(ctx, req.Query, req.Params)
			if res != nil {
				results = []*gcore.Result{res}
			}
		} else {
			results, err = sess.EvalScriptContext(ctx, req.Query)
		}
	case "plan":
		var plan string
		plan, err = sess.ExplainContext(ctx, req.Query)
		if err == nil {
			results = []*gcore.Result{{Plan: plan}}
		}
	case "analyze":
		var plan string
		plan, err = sess.ExplainAnalyzeContext(ctx, req.Query)
		if err == nil {
			results = []*gcore.Result{{Plan: plan}}
		}
	default:
		writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown explain mode %q (want \"plan\" or \"analyze\")", req.Explain), "")
		return
	}
	elapsed := time.Since(start)
	s.logSlow(req.Query, sid, elapsed)
	if err != nil {
		writeQueryError(w, err)
		return
	}
	s.writeResults(w, results, elapsed, sid)
}

func (s *Server) handlePrepare(w http.ResponseWriter, r *http.Request) {
	var req prepareRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if strings.TrimSpace(req.Query) == "" {
		writeError(w, http.StatusBadRequest, "empty query", "")
		return
	}
	live := s.sessions.get(req.Session)
	if live == nil {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown session %q", req.Session), "")
		return
	}
	p, err := live.sess.Prepare(req.Query)
	if err != nil {
		writeQueryError(w, err)
		return
	}
	handle := live.addPrepared(p)
	writeJSON(w, http.StatusOK, prepareResponse{Handle: handle, Params: p.Params(), Session: req.Session})
}

func (s *Server) handleExec(w http.ResponseWriter, r *http.Request) {
	var req execRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	live := s.sessions.get(req.Session)
	if live == nil {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown session %q", req.Session), "")
		return
	}
	p := live.getPrepared(req.Handle)
	if p == nil {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown prepared handle %q", req.Handle), "")
		return
	}
	ctx, cancel := s.withTimeout(r.Context(), req.TimeoutMS)
	defer cancel()
	start := time.Now()
	res, err := p.EvalContext(ctx, req.Params)
	elapsed := time.Since(start)
	s.logSlow(p.Text(), req.Session, elapsed)
	if err != nil {
		writeQueryError(w, err)
		return
	}
	s.writeResults(w, []*gcore.Result{res}, elapsed, req.Session)
}

func (s *Server) handleSessionNew(w http.ResponseWriter, r *http.Request) {
	var req sessionRequest
	if r.ContentLength != 0 && !decodeJSON(w, r, &req) {
		return
	}
	sess := s.newSession()
	if req.Graph != "" {
		if err := sess.SetDefaultGraph(req.Graph); err != nil {
			writeError(w, http.StatusNotFound, err.Error(), "")
			return
		}
	}
	if req.TimeoutMS > 0 {
		l := sess.Limits()
		if d := s.requestTimeout(req.TimeoutMS); d > 0 {
			l.Timeout = d
			sess.SetLimits(l)
		}
	}
	id := s.sessions.add(sess)
	writeJSON(w, http.StatusOK, sessionResponse{Session: id, Graph: req.Graph})
}

func (s *Server) handleSessionClose(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.sessions.remove(id) {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown session %q", id), "")
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"sessions": s.sessions.count(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.backend.Metrics())
}

// writeResults encodes evaluation results: graphs and tables in their
// interchange JSON, EXPLAIN output as the plan string.
func (s *Server) writeResults(w http.ResponseWriter, results []*gcore.Result, elapsed time.Duration, sid string) {
	out := queryResponse{
		Results:   make([]resultJSON, 0, len(results)),
		ElapsedMS: float64(elapsed.Microseconds()) / 1e3,
		Session:   sid,
	}
	for _, res := range results {
		var rj resultJSON
		switch {
		case res == nil:
		case res.Plan != "":
			rj.Plan = res.Plan
		case res.Table != nil:
			data, err := res.Table.MarshalJSON()
			if err != nil {
				writeError(w, http.StatusInternalServerError, err.Error(), "")
				return
			}
			rj.Table = data
		case res.Graph != nil:
			data, err := res.Graph.MarshalJSON()
			if err != nil {
				writeError(w, http.StatusInternalServerError, err.Error(), "")
				return
			}
			rj.Graph = data
		}
		out.Results = append(out.Results, rj)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) logSlow(query, sid string, elapsed time.Duration) {
	if s.cfg.SlowQuery <= 0 || elapsed < s.cfg.SlowQuery {
		return
	}
	if len(query) > 200 {
		query = query[:200] + "…"
	}
	if sid == "" {
		sid = "-"
	}
	s.log.Printf("slow query (%s, session %s): %s", elapsed.Round(time.Millisecond), sid, query)
}

func decodeJSON(w http.ResponseWriter, r *http.Request, into any) bool {
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(into); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err), "")
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(body)
}

func writeError(w http.ResponseWriter, status int, msg, kind string) {
	writeJSON(w, status, errorResponse{Error: msg, Kind: kind})
}

// writeQueryError maps a governed evaluation failure onto an HTTP
// status: user mistakes are 400s, exhausted budgets 422, deadlines
// 504, cancellation 499 (client gone or server draining), contained
// panics 500.
func writeQueryError(w http.ResponseWriter, err error) {
	status, kind := http.StatusBadRequest, ""
	if qe, ok := gcore.AsQueryError(err); ok {
		kind = qe.Kind.String()
		switch qe.Kind {
		case gcore.KindTimeout:
			status = http.StatusGatewayTimeout
		case gcore.KindCanceled:
			status = 499 // client closed request / server draining
		case gcore.KindBudget:
			status = http.StatusUnprocessableEntity
		case gcore.KindInternal:
			status = http.StatusInternalServerError
		}
	} else if errors.Is(err, context.DeadlineExceeded) {
		status = http.StatusGatewayTimeout
	} else if errors.Is(err, context.Canceled) {
		status = 499
	}
	writeError(w, status, err.Error(), kind)
}
