package server

import (
	"fmt"
	"sync"
	"time"

	"gcore"
)

// liveSession is one network client's state: the engine session plus
// the server-side bookkeeping the engine doesn't know about — the
// prepared-statement handle table and the idle clock.
type liveSession struct {
	sess *gcore.Session

	mu         sync.Mutex
	prepared   map[string]*gcore.Prepared
	nextHandle int
	lastUsed   time.Time
}

func (ls *liveSession) touch() {
	ls.mu.Lock()
	ls.lastUsed = time.Now()
	ls.mu.Unlock()
}

func (ls *liveSession) idleSince() time.Time {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	return ls.lastUsed
}

func (ls *liveSession) addPrepared(p *gcore.Prepared) string {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	ls.nextHandle++
	h := fmt.Sprintf("p%d", ls.nextHandle)
	ls.prepared[h] = p
	return h
}

func (ls *liveSession) getPrepared(handle string) *gcore.Prepared {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	return ls.prepared[handle]
}

// registry tracks live sessions by id and expires idle ones. A
// janitor goroutine sweeps at half the idle interval; stop kills it
// (goroutine-leak checks in the torture suite rely on that).
type registry struct {
	idle time.Duration

	mu       sync.Mutex
	sessions map[string]*liveSession
	nextID   int

	done chan struct{}
	once sync.Once
}

func newRegistry(idle time.Duration) *registry {
	r := &registry{
		idle:     idle,
		sessions: map[string]*liveSession{},
		done:     make(chan struct{}),
	}
	if idle > 0 {
		go r.janitor()
	}
	return r
}

func (r *registry) janitor() {
	period := r.idle / 2
	if period < time.Second {
		period = time.Second
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-r.done:
			return
		case <-t.C:
			r.expire(time.Now().Add(-r.idle))
		}
	}
}

func (r *registry) expire(cutoff time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for id, ls := range r.sessions {
		if ls.idleSince().Before(cutoff) {
			delete(r.sessions, id)
		}
	}
}

func (r *registry) stop() {
	r.once.Do(func() { close(r.done) })
}

func (r *registry) add(sess *gcore.Session) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextID++
	id := fmt.Sprintf("s%d", r.nextID)
	r.sessions[id] = &liveSession{
		sess:     sess,
		prepared: map[string]*gcore.Prepared{},
		lastUsed: time.Now(),
	}
	return id
}

// get returns the live session for id (touching its idle clock), or
// nil when unknown or expired.
func (r *registry) get(id string) *liveSession {
	r.mu.Lock()
	ls := r.sessions[id]
	r.mu.Unlock()
	if ls != nil {
		ls.touch()
	}
	return ls
}

func (r *registry) remove(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.sessions[id]; !ok {
		return false
	}
	delete(r.sessions, id)
	return true
}

func (r *registry) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.sessions)
}
