package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"gcore"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	eng := gcore.NewEngine()
	if err := eng.RegisterGraph(gcore.SampleSocialGraph()); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterGraph(gcore.SampleCompanyGraph()); err != nil {
		t.Fatal(err)
	}
	srv := New(eng, cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, map[string]any) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp, out
}

func TestQuerySessionless(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, out := postJSON(t, ts.URL+"/query", map[string]any{
		"query": "CONSTRUCT (n) MATCH (n:Person) ON social_graph",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200: %v", resp.StatusCode, out)
	}
	results := out["results"].([]any)
	if len(results) != 1 {
		t.Fatalf("results = %d, want 1", len(results))
	}
	graph := results[0].(map[string]any)["graph"].(map[string]any)
	if nodes := graph["nodes"].([]any); len(nodes) == 0 {
		t.Fatal("result graph has no nodes")
	}
}

func TestQueryDefaultGraphOverride(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// company_graph is not the engine default; the request override
	// targets it without ON.
	resp, out := postJSON(t, ts.URL+"/query", map[string]any{
		"query": "CONSTRUCT (c) MATCH (c:Company)",
		"graph": "company_graph",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200: %v", resp.StatusCode, out)
	}
	graph := out["results"].([]any)[0].(map[string]any)["graph"].(map[string]any)
	if nodes := graph["nodes"].([]any); len(nodes) != 4 {
		t.Fatalf("company nodes = %d, want 4", len(graph["nodes"].([]any)))
	}
}

func TestQueryUnknownGraph(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, _ := postJSON(t, ts.URL+"/query", map[string]any{
		"query": "CONSTRUCT (c) MATCH (c)",
		"graph": "no_such_graph",
	})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
}

func TestQueryEvalError(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, out := postJSON(t, ts.URL+"/query", map[string]any{
		"query": "CONSTRUCT (n) MATCH (n:Person ON social_graph",
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400: %v", resp.StatusCode, out)
	}
	if out["error"] == "" {
		t.Fatal("missing error message")
	}
}

func TestSessionLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, out := postJSON(t, ts.URL+"/session", map[string]any{"graph": "company_graph"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("session create = %d: %v", resp.StatusCode, out)
	}
	sid := out["session"].(string)

	// The session default graph applies to ON-less matches.
	resp, out = postJSON(t, ts.URL+"/query", map[string]any{
		"query":   "CONSTRUCT (c) MATCH (c:Company)",
		"session": sid,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query = %d: %v", resp.StatusCode, out)
	}
	if got := out["session"]; got != sid {
		t.Fatalf("response session = %v, want %s", got, sid)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/session/"+sid, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete = %d, want 204", dresp.StatusCode)
	}

	resp, _ = postJSON(t, ts.URL+"/query", map[string]any{
		"query":   "CONSTRUCT (c) MATCH (c:Company)",
		"session": sid,
	})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("query on closed session = %d, want 404", resp.StatusCode)
	}
}

func TestPrepareExec(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, out := postJSON(t, ts.URL+"/session", map[string]any{})
	sid := out["session"].(string)

	resp, out := postJSON(t, ts.URL+"/prepare", map[string]any{
		"session": sid,
		"query":   "SELECT n.firstName MATCH (n:Person) ON social_graph WHERE n.employer = $emp",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prepare = %d: %v", resp.StatusCode, out)
	}
	handle := out["handle"].(string)
	params := out["params"].([]any)
	if len(params) != 1 || params[0] != "emp" {
		t.Fatalf("params = %v, want [emp]", params)
	}

	resp, out = postJSON(t, ts.URL+"/exec", map[string]any{
		"session": sid,
		"handle":  handle,
		"params":  map[string]any{"emp": "Acme"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("exec = %d: %v", resp.StatusCode, out)
	}
	table := out["results"].([]any)[0].(map[string]any)["table"].(map[string]any)
	if rows := table["rows"].([]any); len(rows) == 0 {
		t.Fatal("exec returned no rows")
	}

	// Unknown handle and unknown session are 404s.
	resp, _ = postJSON(t, ts.URL+"/exec", map[string]any{"session": sid, "handle": "p999"})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown handle = %d, want 404", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/exec", map[string]any{"session": "s999", "handle": handle})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown session = %d, want 404", resp.StatusCode)
	}
}

func TestExplainModes(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, mode := range []string{"plan", "analyze"} {
		resp, out := postJSON(t, ts.URL+"/query", map[string]any{
			"query":   "CONSTRUCT (n) MATCH (n:Person) ON social_graph",
			"explain": mode,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("explain %s = %d: %v", mode, resp.StatusCode, out)
		}
		plan := out["results"].([]any)[0].(map[string]any)["plan"].(string)
		if !strings.Contains(plan, "MATCH") {
			t.Fatalf("explain %s plan missing MATCH:\n%s", mode, plan)
		}
		if mode == "analyze" && !strings.Contains(plan, "executed:") {
			t.Fatalf("explain analyze missing totals:\n%s", plan)
		}
	}
}

func TestTimeoutMapped(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxTimeout: time.Nanosecond})
	resp, out := postJSON(t, ts.URL+"/query", map[string]any{
		"query": "CONSTRUCT (n) MATCH (n:Person)-[:knows]->(m:Person) ON social_graph",
	})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504: %v", resp.StatusCode, out)
	}
	if kind := out["kind"]; kind != "timeout" {
		t.Fatalf("kind = %v, want timeout", kind)
	}
}

func TestAdmissionLimits(t *testing.T) {
	_, ts := newTestServer(t, Config{Limits: gcore.Limits{MaxBindings: 1}})
	resp, out := postJSON(t, ts.URL+"/query", map[string]any{
		"query": "CONSTRUCT (n) MATCH (n:Person)-[:knows]->(m:Person) ON social_graph",
	})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422: %v", resp.StatusCode, out)
	}
	if kind := out["kind"]; kind != "budget" {
		t.Fatalf("kind = %v, want budget", kind)
	}
}

func TestMetricsAndHealth(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if _, out := postJSON(t, ts.URL+"/query", map[string]any{
		"query": "CONSTRUCT (n) MATCH (n:Person) ON social_graph",
	}); out["error"] != nil {
		t.Fatalf("query failed: %v", out["error"])
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if q := m["queries"].(float64); q < 1 {
		t.Fatalf("metrics queries = %v, want >= 1", q)
	}
	if rs := m["read_statements"].(float64); rs < 1 {
		t.Fatalf("metrics read_statements = %v, want >= 1", rs)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h["status"] != "ok" {
		t.Fatalf("healthz = %v", h)
	}

	resp, err = http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("debug/vars = %d, want 200", resp.StatusCode)
	}
}

func TestSessionIdleExpiry(t *testing.T) {
	srv, ts := newTestServer(t, Config{SessionIdle: 10 * time.Millisecond})
	_, out := postJSON(t, ts.URL+"/session", map[string]any{})
	sid := out["session"].(string)

	// Expire manually (the janitor's floor tick is 1s — too slow for a
	// unit test).
	time.Sleep(20 * time.Millisecond)
	srv.sessions.expire(time.Now().Add(-10 * time.Millisecond))

	resp, _ := postJSON(t, ts.URL+"/query", map[string]any{
		"query":   "CONSTRUCT (n) MATCH (n:Person) ON social_graph",
		"session": sid,
	})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("expired session = %d, want 404", resp.StatusCode)
	}
}

func TestScriptMutationVisibleAcrossSessions(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, out := postJSON(t, ts.URL+"/query", map[string]any{
		"query": "GRAPH VIEW acme_people AS (CONSTRUCT (n) MATCH (n:Person) ON social_graph WHERE n.employer = 'Acme')",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("view = %d: %v", resp.StatusCode, out)
	}
	resp, out = postJSON(t, ts.URL+"/query", map[string]any{
		"query": "CONSTRUCT (n) MATCH (n) ON acme_people",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("view query = %d: %v", resp.StatusCode, out)
	}
}

func TestConcurrentQueries(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	const n = 16
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, out := postJSON(t, ts.URL+"/query", map[string]any{
				"query": "CONSTRUCT (n) MATCH (n:Person) ON social_graph",
			})
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d: %v", resp.StatusCode, out)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
