package csr

import (
	"sort"

	"gcore/internal/ppg"
	"gcore/internal/value"
)

// Columnar property storage. The paper's data model (§2) makes every
// property value a finite set FSET(V); the common case by far is the
// singleton set standing for a scalar. At snapshot build time each
// property key becomes one dense column over the element ordinals:
//
//   - a presence bitmap (one bit per ordinal — absent means the key
//     is not in the element's property map; readers translate that to
//     the empty set, exactly like ppg.Properties.Get),
//   - a typed array when every present value is a singleton of one
//     scalar kind: int64, float64, interned string identifier, bool,
//     or date (stored as day numbers). Strings intern into one
//     snapshot-wide table sorted ascending, so identifier order IS
//     lexicographic order and range predicates become integer
//     comparisons against a binary-searched bound,
//   - an exact mirror of the stored set values either way, so reads
//     that need the full FSET(V) semantics (multi-valued employers,
//     mixed-type columns, IN / SUBSET) return the identical value the
//     map would have — the overflow rule is simply "no typed array".
//
// Columns are frozen at build time like every other snapshot array;
// in-place property writes bump the graph generation (see
// ppg.Graph.TouchProps) and invalidate the cached snapshot.

// ColKind says which typed array a column carries, if any.
type ColKind uint8

// Column kinds. ColOverflow columns have no typed array: at least one
// present value is multi-valued or the scalar kinds are mixed, so
// readers use the mirrored sets.
const (
	ColOverflow ColKind = iota
	ColInt
	ColFloat
	ColString
	ColBool
	ColDate
)

func (k ColKind) String() string {
	switch k {
	case ColInt:
		return "int"
	case ColFloat:
		return "float"
	case ColString:
		return "string"
	case ColBool:
		return "bool"
	case ColDate:
		return "date"
	}
	return "overflow"
}

// Interner is the snapshot-wide string table: distinct property
// string values. A full build interns everything sorted ascending, so
// identifier order equals lexicographic order. Delta applies append
// new strings past the sorted prefix instead of renumbering (which
// would invalidate every shared string column): names[:sorted] stays
// ascending, names[sorted:] is an unordered extension whose lookups
// go through the extIds overlay (the base ids map is shared across
// snapshot versions and never mutated).
type Interner struct {
	names  []string
	ids    map[string]int32
	extIds map[string]int32
	sorted int32
}

// Lookup resolves a string to its interned identifier.
func (in *Interner) Lookup(s string) (int32, bool) {
	if id, ok := in.ids[s]; ok {
		return id, true
	}
	if in.extIds != nil {
		id, ok := in.extIds[s]
		return id, ok
	}
	return 0, false
}

// Bound returns the insertion position of s in the sorted prefix of
// the table and whether s is present exactly there. Because prefix
// identifiers ascend with the strings, every interned id < pos (and
// < SortedCount) names a string < s, and prefix ids ≥ pos (+1 when
// exact) name strings > s — the two facts compile string range
// predicates to integer comparisons. Identifiers at or past
// SortedCount are outside the invariant; their strings must be
// compared directly (Name).
func (in *Interner) Bound(s string) (pos int32, exact bool) {
	names := in.names[:in.sorted]
	i := sort.SearchStrings(names, s)
	return int32(i), i < len(names) && names[i] == s
}

// Count returns the number of interned strings.
func (in *Interner) Count() int { return len(in.names) }

// SortedCount returns the size of the sorted prefix: identifiers
// below it order lexicographically, identifiers at or past it were
// appended by delta applies in arrival order.
func (in *Interner) SortedCount() int32 { return in.sorted }

// Name resolves an identifier back to its string.
func (in *Interner) Name(id int32) string { return in.names[id] }

// PropCol is one property key's column over the node or edge ordinal
// range.
type PropCol struct {
	kind    ColKind
	present []uint64      // presence bitmap, one bit per ordinal
	sets    []value.Value // the stored set values, mirrored exactly
	ints    []int64       // ColInt / ColDate: scalar payloads
	floats  []float64     // ColFloat
	strs    []int32       // ColString: interned identifiers
	bools   []uint64      // ColBool: payload bitmap
}

// Kind reports the column's typed representation (ColOverflow: none).
func (c *PropCol) Kind() ColKind { return c.kind }

// Present reports whether the element at ord carries the property.
// Ordinals past the bitmap read as absent: a column untouched by a
// delta apply is shared at its old length, and elements appended since
// cannot carry a key no write ever mentioned.
func (c *PropCol) Present(ord int32) bool {
	if int(ord>>6) >= len(c.present) {
		return false
	}
	return c.present[ord>>6]&(1<<(uint(ord)&63)) != 0
}

// SetAt returns the stored FSET(V) value at ord — the identical value
// ppg.Properties.Get returned at build time. Only meaningful when
// Present(ord).
func (c *PropCol) SetAt(ord int32) value.Value { return c.sets[ord] }

// Ints returns the int64 payload array (ColInt and ColDate columns);
// entries at non-present ordinals are garbage.
func (c *PropCol) Ints() []int64 { return c.ints }

// Floats returns the float64 payload array (ColFloat columns).
func (c *PropCol) Floats() []float64 { return c.floats }

// StrIDs returns the interned-identifier payload array (ColString).
func (c *PropCol) StrIDs() []int32 { return c.strs }

// BoolAt returns the bool payload at ord (ColBool columns).
func (c *PropCol) BoolAt(ord int32) bool {
	return c.bools[ord>>6]&(1<<(uint(ord)&63)) != 0
}

func bitSet(bm []uint64, i int32) { bm[i>>6] |= 1 << (uint(i) & 63) }

// scalarColKind maps a singleton element to its column kind, or
// ColOverflow for kinds no typed array covers.
func scalarColKind(v value.Value) ColKind {
	switch v.Kind() {
	case value.KindInt:
		return ColInt
	case value.KindFloat:
		return ColFloat
	case value.KindString:
		return ColString
	case value.KindBool:
		return ColBool
	case value.KindDate:
		return ColDate
	}
	return ColOverflow
}

// Strings returns the snapshot's interned string table.
func (s *Snapshot) Strings() *Interner { return s.strings }

// NodeCol returns the column of one node property key, or nil when no
// node carries the key.
func (s *Snapshot) NodeCol(key string) *PropCol { return s.nodeCols[key] }

// EdgeCol returns the column of one edge property key, or nil.
func (s *Snapshot) EdgeCol(key string) *PropCol { return s.edgeCols[key] }

// NodeProp reads σ(node, key) from the columns: the frozen property
// set, or the empty set when absent — exactly Properties.Get at build
// time.
func (s *Snapshot) NodeProp(u int32, key string) value.Value {
	if c := s.nodeCols[key]; c != nil && c.Present(u) {
		return c.sets[u]
	}
	return value.EmptySet
}

// EdgeProp reads σ(edge, key) from the columns.
func (s *Snapshot) EdgeProp(e int32, key string) value.Value {
	if c := s.edgeCols[key]; c != nil && c.Present(e) {
		return c.sets[e]
	}
	return value.EmptySet
}

// buildPropColumns materialises every property key as one column and
// interns all singleton string values. Two passes: gather the mirrors
// and decide each column's kind, then fill the typed arrays (strings
// need the complete table first — identifiers must be assigned in
// sorted order).
func (s *Snapshot) buildPropColumns() {
	s.nodeCols = gatherCols(len(s.nodes), func(i int) ppg.Properties { return s.nodes[i].Props })
	s.edgeCols = gatherCols(len(s.edges), func(i int) ppg.Properties { return s.edges[i].Props })

	seen := map[string]bool{}
	collect := func(cols map[string]*PropCol) {
		for _, c := range cols {
			if c.kind != ColString {
				continue
			}
			for ord, sv := range c.sets {
				if c.Present(int32(ord)) {
					el, _ := sv.Singleton()
					str, _ := el.AsString()
					seen[str] = true
				}
			}
		}
	}
	collect(s.nodeCols)
	collect(s.edgeCols)
	in := &Interner{names: make([]string, 0, len(seen)), ids: make(map[string]int32, len(seen))}
	for str := range seen {
		in.names = append(in.names, str)
	}
	sort.Strings(in.names)
	for i, str := range in.names {
		in.ids[str] = int32(i)
	}
	in.sorted = int32(len(in.names))
	s.strings = in

	fill := func(cols map[string]*PropCol) {
		for _, c := range cols {
			fillTyped(c, in)
		}
	}
	fill(s.nodeCols)
	fill(s.edgeCols)
}

func gatherCols(n int, props func(int) ppg.Properties) map[string]*PropCol {
	cols := map[string]*PropCol{}
	words := (n + 63) / 64
	for i := 0; i < n; i++ {
		for key, sv := range props(i) {
			c := cols[key]
			if c == nil {
				c = &PropCol{
					kind:    ColOverflow,
					present: make([]uint64, words),
					sets:    make([]value.Value, n),
				}
				cols[key] = c
				// The first value decides the candidate kind; every
				// later mismatch demotes the column to overflow.
				if el, ok := sv.Singleton(); ok {
					c.kind = scalarColKind(el)
				}
			} else if c.kind != ColOverflow {
				if el, ok := sv.Singleton(); !ok || scalarColKind(el) != c.kind {
					c.kind = ColOverflow
				}
			}
			bitSet(c.present, int32(i))
			c.sets[i] = sv
		}
	}
	return cols
}

func fillTyped(c *PropCol, in *Interner) {
	n := len(c.sets)
	switch c.kind {
	case ColInt, ColDate:
		c.ints = make([]int64, n)
	case ColFloat:
		c.floats = make([]float64, n)
	case ColString:
		c.strs = make([]int32, n)
	case ColBool:
		c.bools = make([]uint64, (n+63)/64)
	default:
		return
	}
	for ord := 0; ord < n; ord++ {
		if !c.Present(int32(ord)) {
			continue
		}
		el, _ := c.sets[ord].Singleton()
		switch c.kind {
		case ColInt:
			c.ints[ord], _ = el.AsInt()
		case ColDate:
			c.ints[ord], _ = el.AsDateDays()
		case ColFloat:
			c.floats[ord], _ = el.AsFloat()
		case ColString:
			str, _ := el.AsString()
			c.strs[ord] = in.ids[str]
		case ColBool:
			if b, _ := el.AsBool(); b {
				bitSet(c.bools, int32(ord))
			}
		}
	}
}
