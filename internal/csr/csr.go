// Package csr provides an immutable, cache-friendly snapshot of a
// Path Property Graph in compressed-sparse-row form. The ppg.Graph of
// the data model is optimised for mutation: nodes and edges live in
// maps, adjacency in per-node slices, labels as sorted string sets.
// That layout makes every hot-loop step of pattern matching and path
// search a pointer chase — a map probe per node, a string comparison
// per label test. The snapshot re-materialises the same graph as flat
// arrays over dense ordinals:
//
//	ordinal u ∈ [0, NumNodes)   nodes, ascending by ppg.NodeID
//	ordinal e ∈ [0, NumEdges)   edges, ascending by ppg.EdgeID
//
// with out/in adjacency as per-node runs over one flat array (CSR,
// both directions), label sets interned to small integer identifiers, and
// per-label node/edge partitions for indexed scans. Because ordinals
// ascend with identifiers, iterating a CSR range visits elements in
// exactly the order the ppg iteration does — the deterministic
// evaluation order is preserved by construction.
//
// Snapshots are immutable and generation-tagged: ppg.Graph counts its
// mutations — structural ones and in-place property writes alike (see
// ppg.Graph.TouchProps) — and Of serves the cached snapshot only
// while the generation matches. On a mismatch it applies the recorded
// mutation delta to the previous snapshot when it can (delta.go),
// sharing every untouched array between versions, and rebuilds from
// scratch otherwise. Properties are
// frozen at build time into typed columns (props.go): one dense
// column per key with a presence bitmap, scalar payload arrays for
// uniformly-typed singleton values, interned strings, and the stored
// FSET(V) sets mirrored exactly for the multi-valued and mixed-type
// overflow cases.
package csr

import (
	"sort"

	"gcore/internal/ppg"
)

// NoLabel is returned by LabelID for a label no element carries: no
// node or edge can match it in this snapshot.
const NoLabel int32 = -1

// Snapshot is the CSR image of one graph at one generation.
//
// A snapshot is either a full build (Build) or a delta apply
// (delta.go): the previous snapshot extended by a recorded mutation
// delta, structurally sharing every untouched array. The *Patch
// fields are the copy-on-write overlays a delta apply uses for state
// it cannot extend in place — they are nil on a full build, keeping
// the hot accessors overlay-free on the common path.
type Snapshot struct {
	gen uint64

	// Node columns, indexed by node ordinal.
	nodeIDs []ppg.NodeID
	nodes   []*ppg.Node
	// ord maps identifiers to ordinals for the nodes of the last full
	// build; nodes appended by delta applies live in ordPatch (the
	// base map is shared across versions and never mutated).
	ord      map[ppg.NodeID]int32
	ordPatch map[ppg.NodeID]int32

	// Edge columns, indexed by edge ordinal.
	edgeIDs      []ppg.EdgeID
	edges        []*ppg.Edge
	edgeOrd      map[ppg.EdgeID]int32
	edgeOrdPatch map[ppg.EdgeID]int32
	edgeSrc      []int32
	edgeDst      []int32

	// Adjacency: per node ordinal the out/in edge ordinals, ascending
	// — i.e. ascending ppg.EdgeID, matching ppg.Graph.OutEdges order.
	// Build slices one flat array with capacity-clipped subslices, so
	// a later delta apply appending to a run reallocates that run
	// instead of clobbering its neighbour.
	outAdj [][]int32
	inAdj  [][]int32

	// Label interning: names sorted ascending, so label identifiers
	// are deterministic for a given graph.
	labelNames []string
	labelOf    map[string]int32

	// Per-element label sets as CSR over interned identifiers, sorted
	// within each element. Delta applies append runs for new elements;
	// label changes to existing elements go to the patch maps (a run
	// inside the CSR array cannot be resized in place).
	nodeLabelOff   []int32
	nodeLabelIDs   []int32
	edgeLabelOff   []int32
	edgeLabelIDs   []int32
	nodeLabelPatch map[int32][]int32
	edgeLabelPatch map[int32][]int32

	// Per-label partitions: sorted ordinals of the elements carrying
	// the label.
	nodesByLabel [][]int32
	edgesByLabel [][]int32

	// Columnar property storage (props.go): one column per key over
	// the ordinal range, plus the snapshot-wide string table.
	strings  *Interner
	nodeCols map[string]*PropCol
	edgeCols map[string]*PropCol
}

// Of returns the snapshot of g at its current generation: the cached
// build while the generation matches, a delta apply onto the previous
// snapshot when the mutations since it were recorded and are
// incrementalizable, and a full build otherwise. Safe for concurrent
// readers.
func Of(g *ppg.Graph) *Snapshot {
	s, _ := OfCounted(g)
	return s
}

// OfCounted is Of plus a report of how the snapshot was obtained
// (reused, delta-applied, fallback, full build), feeding the
// observability counters.
func OfCounted(g *ppg.Graph) (*Snapshot, BuildInfo) {
	info := BuildInfo{Kind: BuildReused}
	var inc func(prev any, d *ppg.Delta) any
	if !incrementalOff() {
		inc = func(prev any, d *ppg.Delta) any {
			ns, ok := applyDelta(prev.(*Snapshot), g, d, &info)
			if !ok {
				info.Kind = BuildFallback
				return nil
			}
			info.Kind = BuildDelta
			info.DeltaOps = d.Ops
			return ns
		}
	}
	s := g.SnapshotWith(func() any {
		if info.Kind == BuildReused {
			info.Kind = BuildFull
		}
		return Build(g)
	}, inc).(*Snapshot)
	return s, info
}

// Build constructs a fresh snapshot of g, bypassing the cache.
func Build(g *ppg.Graph) *Snapshot {
	s := &Snapshot{gen: g.Generation()}

	s.nodeIDs = g.NodeIDs()
	n := len(s.nodeIDs)
	s.nodes = make([]*ppg.Node, n)
	s.ord = make(map[ppg.NodeID]int32, n)
	for i, id := range s.nodeIDs {
		nd, _ := g.Node(id)
		s.nodes[i] = nd
		s.ord[id] = int32(i)
	}

	s.edgeIDs = g.EdgeIDs()
	m := len(s.edgeIDs)
	s.edges = make([]*ppg.Edge, m)
	s.edgeOrd = make(map[ppg.EdgeID]int32, m)
	s.edgeSrc = make([]int32, m)
	s.edgeDst = make([]int32, m)
	for i, id := range s.edgeIDs {
		ed, _ := g.Edge(id)
		s.edges[i] = ed
		s.edgeOrd[id] = int32(i)
		s.edgeSrc[i] = s.ord[ed.Src]
		s.edgeDst[i] = s.ord[ed.Dst]
	}

	s.internLabels()
	s.buildAdjacency(n, m)
	s.buildPartitions()
	s.buildPropColumns()
	return s
}

// internLabels assigns dense identifiers to every label in use,
// ascending by name, and encodes each element's label set as sorted
// interned identifiers.
func (s *Snapshot) internLabels() {
	seen := map[string]bool{}
	for _, nd := range s.nodes {
		for _, l := range nd.Labels {
			seen[l] = true
		}
	}
	for _, ed := range s.edges {
		for _, l := range ed.Labels {
			seen[l] = true
		}
	}
	s.labelNames = make([]string, 0, len(seen))
	for l := range seen {
		s.labelNames = append(s.labelNames, l)
	}
	sort.Strings(s.labelNames)
	s.labelOf = make(map[string]int32, len(s.labelNames))
	for i, l := range s.labelNames {
		s.labelOf[l] = int32(i)
	}

	encode := func(count int, labels func(int) ppg.Labels) ([]int32, []int32) {
		off := make([]int32, count+1)
		total := 0
		for i := 0; i < count; i++ {
			total += len(labels(i))
		}
		ids := make([]int32, 0, total)
		for i := 0; i < count; i++ {
			off[i] = int32(len(ids))
			ls := labels(i)
			// ppg.Labels is sorted by name and interned identifiers
			// ascend with names, so the encoded run is already sorted.
			for _, l := range ls {
				ids = append(ids, s.labelOf[l])
			}
		}
		off[count] = int32(len(ids))
		return off, ids
	}
	s.nodeLabelOff, s.nodeLabelIDs = encode(len(s.nodes), func(i int) ppg.Labels { return s.nodes[i].Labels })
	s.edgeLabelOff, s.edgeLabelIDs = encode(len(s.edges), func(i int) ppg.Labels { return s.edges[i].Labels })
}

// buildAdjacency fills both adjacency directions by counting degrees
// into one flat array per direction and then appending edge ordinals
// in ascending order — each per-node run therefore ascends by
// ppg.EdgeID, reproducing ppg adjacency order. Runs are sliced with
// their capacity clipped to their length (three-index slices), so an
// append through a run never writes into the next node's run: a delta
// apply extending a node's adjacency gets a fresh copy.
func (s *Snapshot) buildAdjacency(n, m int) {
	outOff := make([]int32, n+1)
	inOff := make([]int32, n+1)
	for e := 0; e < m; e++ {
		outOff[s.edgeSrc[e]+1]++
		inOff[s.edgeDst[e]+1]++
	}
	for u := 0; u < n; u++ {
		outOff[u+1] += outOff[u]
		inOff[u+1] += inOff[u]
	}
	outList := make([]int32, m)
	inList := make([]int32, m)
	outNext := make([]int32, n)
	inNext := make([]int32, n)
	copy(outNext, outOff[:n])
	copy(inNext, inOff[:n])
	for e := 0; e < m; e++ {
		u, v := s.edgeSrc[e], s.edgeDst[e]
		outList[outNext[u]] = int32(e)
		outNext[u]++
		inList[inNext[v]] = int32(e)
		inNext[v]++
	}
	s.outAdj = make([][]int32, n)
	s.inAdj = make([][]int32, n)
	for u := 0; u < n; u++ {
		s.outAdj[u] = outList[outOff[u]:outOff[u+1]:outOff[u+1]]
		s.inAdj[u] = inList[inOff[u]:inOff[u+1]:inOff[u+1]]
	}
}

// buildPartitions groups node and edge ordinals per interned label.
// Iterating ordinals ascending keeps each partition sorted.
func (s *Snapshot) buildPartitions() {
	s.nodesByLabel = make([][]int32, len(s.labelNames))
	s.edgesByLabel = make([][]int32, len(s.labelNames))
	for u := range s.nodes {
		for _, lid := range s.nodeLabelIDs[s.nodeLabelOff[u]:s.nodeLabelOff[u+1]] {
			s.nodesByLabel[lid] = append(s.nodesByLabel[lid], int32(u))
		}
	}
	for e := range s.edges {
		for _, lid := range s.edgeLabelIDs[s.edgeLabelOff[e]:s.edgeLabelOff[e+1]] {
			s.edgesByLabel[lid] = append(s.edgesByLabel[lid], int32(e))
		}
	}
}

// Generation returns the graph generation the snapshot was built at.
func (s *Snapshot) Generation() uint64 { return s.gen }

// NumNodes returns the number of nodes (the ordinal range).
func (s *Snapshot) NumNodes() int { return len(s.nodeIDs) }

// NumEdges returns the number of edges.
func (s *Snapshot) NumEdges() int { return len(s.edgeIDs) }

// NumLabels returns the number of distinct labels in use.
func (s *Snapshot) NumLabels() int { return len(s.labelNames) }

// Ord maps a node identifier to its dense ordinal.
func (s *Snapshot) Ord(id ppg.NodeID) (int32, bool) {
	if u, ok := s.ord[id]; ok {
		return u, true
	}
	if s.ordPatch != nil {
		u, ok := s.ordPatch[id]
		return u, ok
	}
	return 0, false
}

// NodeID maps a node ordinal back to its identifier.
func (s *Snapshot) NodeID(u int32) ppg.NodeID { return s.nodeIDs[u] }

// Node returns the node at an ordinal. The pointer aliases the live
// graph; labels and properties are both frozen at build time (labels
// in the interned label arrays, properties in the columns), and every
// mutation — including in-place property writes — bumps the graph
// generation and invalidates the snapshot.
func (s *Snapshot) Node(u int32) *ppg.Node { return s.nodes[u] }

// EdgeID maps an edge ordinal back to its identifier.
func (s *Snapshot) EdgeID(e int32) ppg.EdgeID { return s.edgeIDs[e] }

// EdgeOrd maps an edge identifier to its dense ordinal.
func (s *Snapshot) EdgeOrd(id ppg.EdgeID) (int32, bool) {
	if e, ok := s.edgeOrd[id]; ok {
		return e, true
	}
	if s.edgeOrdPatch != nil {
		e, ok := s.edgeOrdPatch[id]
		return e, ok
	}
	return 0, false
}

// Edge returns the edge at an ordinal (aliasing rules as with Node).
func (s *Snapshot) Edge(e int32) *ppg.Edge { return s.edges[e] }

// Src returns the source-node ordinal of an edge ordinal.
func (s *Snapshot) Src(e int32) int32 { return s.edgeSrc[e] }

// Dst returns the destination-node ordinal of an edge ordinal.
func (s *Snapshot) Dst(e int32) int32 { return s.edgeDst[e] }

// Out returns the out-edge ordinals of node ordinal u, ascending by
// edge identifier. The slice aliases the snapshot and is read-only.
func (s *Snapshot) Out(u int32) []int32 { return s.outAdj[u] }

// In returns the in-edge ordinals of node ordinal u, ascending by edge
// identifier, read-only.
func (s *Snapshot) In(u int32) []int32 { return s.inAdj[u] }

// LabelID resolves a label name to its interned identifier, or NoLabel
// if no element of the snapshot carries it.
func (s *Snapshot) LabelID(name string) int32 {
	if id, ok := s.labelOf[name]; ok {
		return id
	}
	return NoLabel
}

// LabelName resolves an interned identifier back to its name.
func (s *Snapshot) LabelName(id int32) string { return s.labelNames[id] }

// nodeLabelRun returns the sorted interned-label run of node ordinal
// u, honouring delta-apply label overrides.
func (s *Snapshot) nodeLabelRun(u int32) []int32 {
	if s.nodeLabelPatch != nil {
		if run, ok := s.nodeLabelPatch[u]; ok {
			return run
		}
	}
	return s.nodeLabelIDs[s.nodeLabelOff[u]:s.nodeLabelOff[u+1]]
}

// edgeLabelRun returns the sorted interned-label run of edge ordinal
// e, honouring delta-apply label overrides.
func (s *Snapshot) edgeLabelRun(e int32) []int32 {
	if s.edgeLabelPatch != nil {
		if run, ok := s.edgeLabelPatch[e]; ok {
			return run
		}
	}
	return s.edgeLabelIDs[s.edgeLabelOff[e]:s.edgeLabelOff[e+1]]
}

// NodeHasLabel reports whether the node at ordinal u carries the
// interned label. Label runs are short sorted slices; a linear scan
// with early exit beats binary search at these sizes.
func (s *Snapshot) NodeHasLabel(u, lid int32) bool {
	for _, l := range s.nodeLabelRun(u) {
		if l == lid {
			return true
		}
		if l > lid {
			return false
		}
	}
	return false
}

// EdgeHasLabel reports whether the edge at ordinal e carries the
// interned label.
func (s *Snapshot) EdgeHasLabel(e, lid int32) bool {
	for _, l := range s.edgeLabelRun(e) {
		if l == lid {
			return true
		}
		if l > lid {
			return false
		}
	}
	return false
}

// NodesWithLabel returns the sorted node ordinals carrying the
// interned label (read-only; nil for NoLabel).
func (s *Snapshot) NodesWithLabel(lid int32) []int32 {
	if lid < 0 || int(lid) >= len(s.nodesByLabel) {
		return nil
	}
	return s.nodesByLabel[lid]
}

// EdgesWithLabel returns the sorted edge ordinals carrying the
// interned label (read-only; nil for NoLabel).
func (s *Snapshot) EdgesWithLabel(lid int32) []int32 {
	if lid < 0 || int(lid) >= len(s.edgesByLabel) {
		return nil
	}
	return s.edgesByLabel[lid]
}
