// Package csr provides an immutable, cache-friendly snapshot of a
// Path Property Graph in compressed-sparse-row form. The ppg.Graph of
// the data model is optimised for mutation: nodes and edges live in
// maps, adjacency in per-node slices, labels as sorted string sets.
// That layout makes every hot-loop step of pattern matching and path
// search a pointer chase — a map probe per node, a string comparison
// per label test. The snapshot re-materialises the same graph as flat
// arrays over dense ordinals:
//
//	ordinal u ∈ [0, NumNodes)   nodes, ascending by ppg.NodeID
//	ordinal e ∈ [0, NumEdges)   edges, ascending by ppg.EdgeID
//
// with out/in adjacency as offset+target arrays (CSR, both
// directions), label sets interned to small integer identifiers, and
// per-label node/edge partitions for indexed scans. Because ordinals
// ascend with identifiers, iterating a CSR range visits elements in
// exactly the order the ppg iteration does — the deterministic
// evaluation order is preserved by construction.
//
// Snapshots are immutable and generation-tagged: ppg.Graph counts its
// mutations — structural ones and in-place property writes alike (see
// ppg.Graph.TouchProps) — and Of serves the cached snapshot only
// while the generation matches, rebuilding otherwise. Properties are
// frozen at build time into typed columns (props.go): one dense
// column per key with a presence bitmap, scalar payload arrays for
// uniformly-typed singleton values, interned strings, and the stored
// FSET(V) sets mirrored exactly for the multi-valued and mixed-type
// overflow cases.
package csr

import (
	"sort"

	"gcore/internal/ppg"
)

// NoLabel is returned by LabelID for a label no element carries: no
// node or edge can match it in this snapshot.
const NoLabel int32 = -1

// Snapshot is the CSR image of one graph at one generation.
type Snapshot struct {
	gen uint64

	// Node columns, indexed by node ordinal.
	nodeIDs []ppg.NodeID
	nodes   []*ppg.Node
	ord     map[ppg.NodeID]int32

	// Edge columns, indexed by edge ordinal.
	edgeIDs []ppg.EdgeID
	edges   []*ppg.Edge
	edgeOrd map[ppg.EdgeID]int32
	edgeSrc []int32
	edgeDst []int32

	// Adjacency, CSR in both directions: the out-edges of node ordinal
	// u are outList[outOff[u]:outOff[u+1]] (edge ordinals, ascending —
	// i.e. ascending ppg.EdgeID, matching ppg.Graph.OutEdges order).
	outOff  []int32
	outList []int32
	inOff   []int32
	inList  []int32

	// Label interning: names sorted ascending, so label identifiers
	// are deterministic for a given graph.
	labelNames []string
	labelOf    map[string]int32

	// Per-element label sets as CSR over interned identifiers, sorted
	// within each element.
	nodeLabelOff []int32
	nodeLabelIDs []int32
	edgeLabelOff []int32
	edgeLabelIDs []int32

	// Per-label partitions: sorted ordinals of the elements carrying
	// the label.
	nodesByLabel [][]int32
	edgesByLabel [][]int32

	// Columnar property storage (props.go): one column per key over
	// the ordinal range, plus the snapshot-wide string table.
	strings  *Interner
	nodeCols map[string]*PropCol
	edgeCols map[string]*PropCol
}

// Of returns the snapshot of g at its current generation, building it
// on first use and reusing the cached build until g mutates. Safe for
// concurrent readers.
func Of(g *ppg.Graph) *Snapshot {
	return g.Snapshot(func() any { return Build(g) }).(*Snapshot)
}

// OfCounted is Of plus a reuse report: hit is true when the cached
// generation was returned and false when this call (re)built the
// snapshot, feeding the observability CSR-cache counters.
func OfCounted(g *ppg.Graph) (snap *Snapshot, hit bool) {
	built := false
	s := g.Snapshot(func() any {
		built = true
		return Build(g)
	}).(*Snapshot)
	return s, !built
}

// Build constructs a fresh snapshot of g, bypassing the cache.
func Build(g *ppg.Graph) *Snapshot {
	s := &Snapshot{gen: g.Generation()}

	s.nodeIDs = g.NodeIDs()
	n := len(s.nodeIDs)
	s.nodes = make([]*ppg.Node, n)
	s.ord = make(map[ppg.NodeID]int32, n)
	for i, id := range s.nodeIDs {
		nd, _ := g.Node(id)
		s.nodes[i] = nd
		s.ord[id] = int32(i)
	}

	s.edgeIDs = g.EdgeIDs()
	m := len(s.edgeIDs)
	s.edges = make([]*ppg.Edge, m)
	s.edgeOrd = make(map[ppg.EdgeID]int32, m)
	s.edgeSrc = make([]int32, m)
	s.edgeDst = make([]int32, m)
	for i, id := range s.edgeIDs {
		ed, _ := g.Edge(id)
		s.edges[i] = ed
		s.edgeOrd[id] = int32(i)
		s.edgeSrc[i] = s.ord[ed.Src]
		s.edgeDst[i] = s.ord[ed.Dst]
	}

	s.internLabels()
	s.buildAdjacency(n, m)
	s.buildPartitions()
	s.buildPropColumns()
	return s
}

// internLabels assigns dense identifiers to every label in use,
// ascending by name, and encodes each element's label set as sorted
// interned identifiers.
func (s *Snapshot) internLabels() {
	seen := map[string]bool{}
	for _, nd := range s.nodes {
		for _, l := range nd.Labels {
			seen[l] = true
		}
	}
	for _, ed := range s.edges {
		for _, l := range ed.Labels {
			seen[l] = true
		}
	}
	s.labelNames = make([]string, 0, len(seen))
	for l := range seen {
		s.labelNames = append(s.labelNames, l)
	}
	sort.Strings(s.labelNames)
	s.labelOf = make(map[string]int32, len(s.labelNames))
	for i, l := range s.labelNames {
		s.labelOf[l] = int32(i)
	}

	encode := func(count int, labels func(int) ppg.Labels) ([]int32, []int32) {
		off := make([]int32, count+1)
		total := 0
		for i := 0; i < count; i++ {
			total += len(labels(i))
		}
		ids := make([]int32, 0, total)
		for i := 0; i < count; i++ {
			off[i] = int32(len(ids))
			ls := labels(i)
			// ppg.Labels is sorted by name and interned identifiers
			// ascend with names, so the encoded run is already sorted.
			for _, l := range ls {
				ids = append(ids, s.labelOf[l])
			}
		}
		off[count] = int32(len(ids))
		return off, ids
	}
	s.nodeLabelOff, s.nodeLabelIDs = encode(len(s.nodes), func(i int) ppg.Labels { return s.nodes[i].Labels })
	s.edgeLabelOff, s.edgeLabelIDs = encode(len(s.edges), func(i int) ppg.Labels { return s.edges[i].Labels })
}

// buildAdjacency fills the two CSR directions by counting degrees and
// then appending edge ordinals in ascending order — each per-node run
// therefore ascends by ppg.EdgeID, reproducing ppg adjacency order.
func (s *Snapshot) buildAdjacency(n, m int) {
	s.outOff = make([]int32, n+1)
	s.inOff = make([]int32, n+1)
	for e := 0; e < m; e++ {
		s.outOff[s.edgeSrc[e]+1]++
		s.inOff[s.edgeDst[e]+1]++
	}
	for u := 0; u < n; u++ {
		s.outOff[u+1] += s.outOff[u]
		s.inOff[u+1] += s.inOff[u]
	}
	s.outList = make([]int32, m)
	s.inList = make([]int32, m)
	outNext := make([]int32, n)
	inNext := make([]int32, n)
	copy(outNext, s.outOff[:n])
	copy(inNext, s.inOff[:n])
	for e := 0; e < m; e++ {
		u, v := s.edgeSrc[e], s.edgeDst[e]
		s.outList[outNext[u]] = int32(e)
		outNext[u]++
		s.inList[inNext[v]] = int32(e)
		inNext[v]++
	}
}

// buildPartitions groups node and edge ordinals per interned label.
// Iterating ordinals ascending keeps each partition sorted.
func (s *Snapshot) buildPartitions() {
	s.nodesByLabel = make([][]int32, len(s.labelNames))
	s.edgesByLabel = make([][]int32, len(s.labelNames))
	for u := range s.nodes {
		for _, lid := range s.nodeLabelIDs[s.nodeLabelOff[u]:s.nodeLabelOff[u+1]] {
			s.nodesByLabel[lid] = append(s.nodesByLabel[lid], int32(u))
		}
	}
	for e := range s.edges {
		for _, lid := range s.edgeLabelIDs[s.edgeLabelOff[e]:s.edgeLabelOff[e+1]] {
			s.edgesByLabel[lid] = append(s.edgesByLabel[lid], int32(e))
		}
	}
}

// Generation returns the graph generation the snapshot was built at.
func (s *Snapshot) Generation() uint64 { return s.gen }

// NumNodes returns the number of nodes (the ordinal range).
func (s *Snapshot) NumNodes() int { return len(s.nodeIDs) }

// NumEdges returns the number of edges.
func (s *Snapshot) NumEdges() int { return len(s.edgeIDs) }

// NumLabels returns the number of distinct labels in use.
func (s *Snapshot) NumLabels() int { return len(s.labelNames) }

// Ord maps a node identifier to its dense ordinal.
func (s *Snapshot) Ord(id ppg.NodeID) (int32, bool) {
	u, ok := s.ord[id]
	return u, ok
}

// NodeID maps a node ordinal back to its identifier.
func (s *Snapshot) NodeID(u int32) ppg.NodeID { return s.nodeIDs[u] }

// Node returns the node at an ordinal. The pointer aliases the live
// graph; labels and properties are both frozen at build time (labels
// in the interned label arrays, properties in the columns), and every
// mutation — including in-place property writes — bumps the graph
// generation and invalidates the snapshot.
func (s *Snapshot) Node(u int32) *ppg.Node { return s.nodes[u] }

// EdgeID maps an edge ordinal back to its identifier.
func (s *Snapshot) EdgeID(e int32) ppg.EdgeID { return s.edgeIDs[e] }

// EdgeOrd maps an edge identifier to its dense ordinal.
func (s *Snapshot) EdgeOrd(id ppg.EdgeID) (int32, bool) {
	e, ok := s.edgeOrd[id]
	return e, ok
}

// Edge returns the edge at an ordinal (aliasing rules as with Node).
func (s *Snapshot) Edge(e int32) *ppg.Edge { return s.edges[e] }

// Src returns the source-node ordinal of an edge ordinal.
func (s *Snapshot) Src(e int32) int32 { return s.edgeSrc[e] }

// Dst returns the destination-node ordinal of an edge ordinal.
func (s *Snapshot) Dst(e int32) int32 { return s.edgeDst[e] }

// Out returns the out-edge ordinals of node ordinal u, ascending by
// edge identifier. The slice aliases the snapshot and is read-only.
func (s *Snapshot) Out(u int32) []int32 { return s.outList[s.outOff[u]:s.outOff[u+1]] }

// In returns the in-edge ordinals of node ordinal u, ascending by edge
// identifier, read-only.
func (s *Snapshot) In(u int32) []int32 { return s.inList[s.inOff[u]:s.inOff[u+1]] }

// LabelID resolves a label name to its interned identifier, or NoLabel
// if no element of the snapshot carries it.
func (s *Snapshot) LabelID(name string) int32 {
	if id, ok := s.labelOf[name]; ok {
		return id
	}
	return NoLabel
}

// LabelName resolves an interned identifier back to its name.
func (s *Snapshot) LabelName(id int32) string { return s.labelNames[id] }

// NodeHasLabel reports whether the node at ordinal u carries the
// interned label. Label runs are short sorted slices; a linear scan
// with early exit beats binary search at these sizes.
func (s *Snapshot) NodeHasLabel(u, lid int32) bool {
	for _, l := range s.nodeLabelIDs[s.nodeLabelOff[u]:s.nodeLabelOff[u+1]] {
		if l == lid {
			return true
		}
		if l > lid {
			return false
		}
	}
	return false
}

// EdgeHasLabel reports whether the edge at ordinal e carries the
// interned label.
func (s *Snapshot) EdgeHasLabel(e, lid int32) bool {
	for _, l := range s.edgeLabelIDs[s.edgeLabelOff[e]:s.edgeLabelOff[e+1]] {
		if l == lid {
			return true
		}
		if l > lid {
			return false
		}
	}
	return false
}

// NodesWithLabel returns the sorted node ordinals carrying the
// interned label (read-only; nil for NoLabel).
func (s *Snapshot) NodesWithLabel(lid int32) []int32 {
	if lid < 0 || int(lid) >= len(s.nodesByLabel) {
		return nil
	}
	return s.nodesByLabel[lid]
}

// EdgesWithLabel returns the sorted edge ordinals carrying the
// interned label (read-only; nil for NoLabel).
func (s *Snapshot) EdgesWithLabel(lid int32) []int32 {
	if lid < 0 || int(lid) >= len(s.edgesByLabel) {
		return nil
	}
	return s.edgesByLabel[lid]
}
