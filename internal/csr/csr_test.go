package csr

import (
	"math/rand"
	"testing"

	"gcore/internal/ppg"
)

// testGraph builds a small multi-label graph with non-contiguous,
// interleaved identifiers to exercise the ordinal remap.
func testGraph(t testing.TB) *ppg.Graph {
	t.Helper()
	g := ppg.New("t")
	nodes := []struct {
		id     ppg.NodeID
		labels []string
	}{
		{100, []string{"Person"}},
		{7, []string{"Person", "Manager"}},
		{55, []string{"City"}},
		{3, nil},
		{200, []string{"Tag"}},
	}
	for _, n := range nodes {
		if err := g.AddNode(&ppg.Node{ID: n.id, Labels: ppg.NewLabels(n.labels...)}); err != nil {
			t.Fatal(err)
		}
	}
	edges := []struct {
		id       ppg.EdgeID
		src, dst ppg.NodeID
		labels   []string
	}{
		{900, 100, 7, []string{"knows"}},
		{20, 7, 100, []string{"knows", "likes"}},
		{31, 100, 55, []string{"isLocatedIn"}},
		{32, 7, 55, []string{"isLocatedIn"}},
		{33, 3, 3, nil}, // self-loop, unlabelled
	}
	for _, e := range edges {
		if err := g.AddEdge(&ppg.Edge{ID: e.id, Src: e.src, Dst: e.dst, Labels: ppg.NewLabels(e.labels...)}); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestBuildRoundTrip(t *testing.T) {
	g := testGraph(t)
	s := Build(g)

	if s.NumNodes() != g.NumNodes() || s.NumEdges() != g.NumEdges() {
		t.Fatalf("size mismatch: %d/%d nodes, %d/%d edges",
			s.NumNodes(), g.NumNodes(), s.NumEdges(), g.NumEdges())
	}
	// Ordinals ascend with identifiers and round-trip.
	var prev ppg.NodeID
	for u := int32(0); u < int32(s.NumNodes()); u++ {
		id := s.NodeID(u)
		if u > 0 && id <= prev {
			t.Fatalf("node ordinals not ascending by id: ord %d has id %d after %d", u, id, prev)
		}
		prev = id
		back, ok := s.Ord(id)
		if !ok || back != u {
			t.Fatalf("ordinal round trip failed: %d → %d → %d (%v)", u, id, back, ok)
		}
		if s.Node(u).ID != id {
			t.Fatalf("node pointer mismatch at ordinal %d", u)
		}
	}
	if _, ok := s.Ord(999); ok {
		t.Fatal("Ord accepted a missing node id")
	}
}

func TestAdjacencyAgreesWithPPG(t *testing.T) {
	g := testGraph(t)
	s := Build(g)
	for u := int32(0); u < int32(s.NumNodes()); u++ {
		id := s.NodeID(u)
		for dir, want := range map[string][]ppg.EdgeID{"out": g.OutEdges(id), "in": g.InEdges(id)} {
			var list []int32
			if dir == "out" {
				list = s.Out(u)
			} else {
				list = s.In(u)
			}
			if len(list) != len(want) {
				t.Fatalf("%s degree of #%d: csr %d, ppg %d", dir, id, len(list), len(want))
			}
			for i, eo := range list {
				if s.EdgeID(eo) != want[i] {
					t.Fatalf("%s[%d] of #%d: csr edge #%d, ppg edge #%d", dir, i, id, s.EdgeID(eo), want[i])
				}
			}
		}
	}
	// Endpoint ordinals match the edge records.
	for e := int32(0); e < int32(s.NumEdges()); e++ {
		ed := s.Edge(e)
		if s.NodeID(s.Src(e)) != ed.Src || s.NodeID(s.Dst(e)) != ed.Dst {
			t.Fatalf("edge #%d endpoints: csr (%d,%d), ppg (%d,%d)",
				ed.ID, s.NodeID(s.Src(e)), s.NodeID(s.Dst(e)), ed.Src, ed.Dst)
		}
	}
}

func TestLabelsAndPartitions(t *testing.T) {
	g := testGraph(t)
	s := Build(g)
	if s.LabelID("Nope") != NoLabel {
		t.Fatal("unknown label must map to NoLabel")
	}
	for lid := int32(0); lid < int32(s.NumLabels()); lid++ {
		name := s.LabelName(lid)
		if s.LabelID(name) != lid {
			t.Fatalf("label interning not a bijection at %q", name)
		}
		// Node membership test agrees with ppg.Labels.Has.
		for u := int32(0); u < int32(s.NumNodes()); u++ {
			if s.NodeHasLabel(u, lid) != s.Node(u).Labels.Has(name) {
				t.Fatalf("NodeHasLabel(%d, %q) disagrees with ppg", u, name)
			}
		}
		for e := int32(0); e < int32(s.NumEdges()); e++ {
			if s.EdgeHasLabel(e, lid) != s.Edge(e).Labels.Has(name) {
				t.Fatalf("EdgeHasLabel(%d, %q) disagrees with ppg", e, name)
			}
		}
		// Partitions agree with the ppg label index.
		wantN := g.NodesWithLabel(name)
		gotN := s.NodesWithLabel(lid)
		if len(wantN) != len(gotN) {
			t.Fatalf("node partition %q: csr %d, ppg %d", name, len(gotN), len(wantN))
		}
		for i, u := range gotN {
			if s.NodeID(u) != wantN[i] {
				t.Fatalf("node partition %q[%d]: csr #%d, ppg #%d", name, i, s.NodeID(u), wantN[i])
			}
		}
		wantE := g.EdgesWithLabel(name)
		gotE := s.EdgesWithLabel(lid)
		if len(wantE) != len(gotE) {
			t.Fatalf("edge partition %q: csr %d, ppg %d", name, len(gotE), len(wantE))
		}
		for i, e := range gotE {
			if s.EdgeID(e) != wantE[i] {
				t.Fatalf("edge partition %q[%d]: csr #%d, ppg #%d", name, i, s.EdgeID(e), wantE[i])
			}
		}
	}
}

func TestOfCachesPerGeneration(t *testing.T) {
	g := testGraph(t)
	s1 := Of(g)
	s2 := Of(g)
	if s1 != s2 {
		t.Fatal("Of rebuilt the snapshot without a mutation")
	}
	if s1.Generation() != g.Generation() {
		t.Fatalf("snapshot tagged gen %d, graph at %d", s1.Generation(), g.Generation())
	}
	if err := g.AddNode(&ppg.Node{ID: 777, Labels: ppg.NewLabels("Person")}); err != nil {
		t.Fatal(err)
	}
	s3 := Of(g)
	if s3 == s1 {
		t.Fatal("Of served a stale snapshot after AddNode")
	}
	if _, ok := s3.Ord(777); !ok {
		t.Fatal("rebuilt snapshot is missing the new node")
	}
	if _, ok := s1.Ord(777); ok {
		t.Fatal("old snapshot mutated in place")
	}
}

func TestRandomGraphAgreement(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		g := ppg.New("rand")
		n := 1 + r.Intn(40)
		var ids []ppg.NodeID
		labels := []string{"a", "b", "c"}
		for i := 0; i < n; i++ {
			id := ppg.NodeID(r.Intn(1000))
			if _, ok := g.Node(id); ok {
				continue
			}
			ls := ppg.Labels{}
			for _, l := range labels {
				if r.Intn(2) == 0 {
					ls = ls.Add(l)
				}
			}
			if err := g.AddNode(&ppg.Node{ID: id, Labels: ls}); err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
		}
		for e := 0; e < n*2; e++ {
			src := ids[r.Intn(len(ids))]
			dst := ids[r.Intn(len(ids))]
			eid := ppg.EdgeID(10_000 + r.Intn(10_000))
			if _, ok := g.Edge(eid); ok {
				continue
			}
			if err := g.AddEdge(&ppg.Edge{ID: eid, Src: src, Dst: dst,
				Labels: ppg.NewLabels(labels[r.Intn(len(labels))])}); err != nil {
				t.Fatal(err)
			}
		}
		s := Build(g)
		for u := int32(0); u < int32(s.NumNodes()); u++ {
			id := s.NodeID(u)
			out := g.OutEdges(id)
			if len(out) != len(s.Out(u)) {
				t.Fatalf("trial %d: out degree mismatch at #%d", trial, id)
			}
			for i, eo := range s.Out(u) {
				if s.EdgeID(eo) != out[i] {
					t.Fatalf("trial %d: out order mismatch at #%d", trial, id)
				}
			}
			in := g.InEdges(id)
			for i, eo := range s.In(u) {
				if s.EdgeID(eo) != in[i] {
					t.Fatalf("trial %d: in order mismatch at #%d", trial, id)
				}
			}
		}
	}
}
