package csr

import (
	"fmt"
	"math"
	"sort"
	"unsafe"

	"gcore/internal/ppg"
	"gcore/internal/value"
)

// Incremental snapshot maintenance. A mutation no longer costs the
// next reader a full O(V+E) rebuild: ppg.Graph records the identifiers
// touched since the last build (ppg/delta.go), and applyDelta extends
// the previous snapshot by exactly those elements, structurally
// sharing every untouched array between the two versions:
//
//   - node/edge columns, label runs and the interner grow append-only
//     (new elements always take ordinals past the old range),
//   - per-node adjacency runs and per-label partitions are recopied
//     only where the delta touches them (copy-on-write),
//   - property columns are shared wholesale when their key is
//     untouched, extended when only new ordinals were written, and
//     recopied only when an existing ordinal changed,
//   - state that cannot grow in place — ordinal maps, label sets of
//     existing elements, new interned strings — goes to small overlay
//     maps consulted after the base structures.
//
// Sharing is safe because the snapshot cache is a linear chain: each
// cached snapshot is the base of at most one delta apply (under the
// cache lock), so an append that lands in spare capacity writes only
// beyond the previous version's length — indices its readers never
// touch. Anything requiring a write inside the shared region (bitmap
// words, changed ordinals) is copied first.
//
// Deltas that cannot or should not be applied — dropped recordings
// (TouchProps, ReplaceWith, overflow), non-monotonic identifiers,
// label names the snapshot has never seen, deltas or accumulated
// overlays too large relative to the graph — fall back to Build; the
// full rebuild also re-densifies every overlay, so fallbacks act as
// compaction.

// DisableIncremental gating. The knob itself lives in internal/core
// (core.DisableIncrementalSnapshot, beside DisableCSR), but snapshots
// are also taken inside this package's callers that never go through
// core's snapOf (rpq, expression contexts), so the gate binds here.
var disableIncremental *bool

// BindDisableIncremental points the incremental gate at an external
// knob; core's init wires core.DisableIncrementalSnapshot here.
func BindDisableIncremental(p *bool) { disableIncremental = p }

func incrementalOff() bool { return disableIncremental != nil && *disableIncremental }

// BuildKind says how OfCounted obtained its snapshot.
type BuildKind uint8

// The snapshot acquisition kinds.
const (
	// BuildReused served the cached snapshot (generation match).
	BuildReused BuildKind = iota
	// BuildFull ran the full Build (no previous snapshot, recording
	// dropped, or incremental maintenance disabled).
	BuildFull
	// BuildDelta applied the recorded delta to the previous snapshot.
	BuildDelta
	// BuildFallback had a recorded delta but declined it (too large,
	// non-monotonic, new labels) and ran the full Build instead.
	BuildFallback
)

// BuildInfo reports one OfCounted acquisition for the observability
// counters: what happened, the delta size, and approximately how many
// bytes of the resulting snapshot are shared with the previous
// version versus freshly allocated (delta applies only; map overlays
// and inner adjacency runs are estimated).
type BuildInfo struct {
	Kind        BuildKind
	DeltaOps    int
	BytesShared int64
	BytesCopied int64
}

// Incremental-apply size gates: below the floor a delta always
// applies; above it, the delta plus every accumulated overlay must
// stay under 1/deltaMaxFraction of the element count, or the full
// rebuild (which re-densifies the overlays) is the better snapshot.
const (
	deltaOpsFloor    = 64
	deltaMaxFraction = 8
)

// colWrite is one property-map replacement projected onto a column:
// set the value at ord, or clear it (key removed by the new map).
type colWrite struct {
	ord   int32
	val   value.Value
	clear bool
}

// applyDelta extends prev — the snapshot of g before the mutations
// recorded in d — to g's current state. It returns false to decline
// (caller falls back to Build); it never mutates prev's visible state
// either way. Called under the graph's snapshot cache lock.
func applyDelta(prev *Snapshot, g *ppg.Graph, d *ppg.Delta, info *BuildInfo) (*Snapshot, bool) {
	n := len(prev.nodeIDs)
	m := len(prev.edgeIDs)

	if d.Ops == 0 {
		// Only path mutations bumped the generation; nothing the
		// snapshot materialises changed. Re-tag a shallow copy.
		ns := *prev
		ns.gen = g.Generation()
		accountShare(prev, &ns, info)
		return &ns, true
	}

	overlay := len(prev.ordPatch) + len(prev.edgeOrdPatch) +
		len(prev.nodeLabelPatch) + len(prev.edgeLabelPatch)
	if prev.strings != nil {
		overlay += len(prev.strings.extIds)
	}
	if d.Ops+overlay > deltaOpsFloor && (d.Ops+overlay)*deltaMaxFraction > n+m {
		return nil, false
	}

	// Ordinals ascend with identifiers; appending keeps that true only
	// when every new identifier exceeds the previous maximum.
	addN := dedupIDs(d.AddedNodes)
	addE := dedupIDs(d.AddedEdges)
	if len(addN) > 0 && n > 0 && addN[0] <= prev.nodeIDs[n-1] {
		return nil, false
	}
	if len(addE) > 0 && m > 0 && addE[0] <= prev.edgeIDs[m-1] {
		return nil, false
	}
	addNSet := idSet(addN)
	addESet := idSet(addE)
	chNodeLabels := dedupIDsExcl(d.NodeLabels, addNSet)
	chEdgeLabels := dedupIDsExcl(d.EdgeLabels, addESet)
	chNodeProps := dedupIDsExcl(d.NodeProps, addNSet)
	chEdgeProps := dedupIDsExcl(d.EdgeProps, addESet)

	// The interned label universe is frozen at build time (ids are
	// indexes into sorted labelNames); a label name the snapshot has
	// never seen cannot be appended without renumbering. Fall back.
	for _, id := range addN {
		nd, ok := g.Node(id)
		if !ok || !labelsKnown(nd.Labels, prev.labelOf) {
			return nil, false
		}
	}
	for _, id := range chNodeLabels {
		nd, ok := g.Node(id)
		if !ok || !labelsKnown(nd.Labels, prev.labelOf) {
			return nil, false
		}
	}
	for _, id := range addE {
		ed, ok := g.Edge(id)
		if !ok || !labelsKnown(ed.Labels, prev.labelOf) {
			return nil, false
		}
	}
	for _, id := range chEdgeLabels {
		ed, ok := g.Edge(id)
		if !ok || !labelsKnown(ed.Labels, prev.labelOf) {
			return nil, false
		}
	}

	newN := n + len(addN)
	newM := m + len(addE)
	ns := &Snapshot{
		gen: g.Generation(),

		nodeIDs:  prev.nodeIDs,
		nodes:    prev.nodes,
		ord:      prev.ord,
		ordPatch: prev.ordPatch,

		edgeIDs:      prev.edgeIDs,
		edges:        prev.edges,
		edgeOrd:      prev.edgeOrd,
		edgeOrdPatch: prev.edgeOrdPatch,
		edgeSrc:      prev.edgeSrc,
		edgeDst:      prev.edgeDst,

		labelNames: prev.labelNames,
		labelOf:    prev.labelOf,

		nodeLabelOff:   prev.nodeLabelOff,
		nodeLabelIDs:   prev.nodeLabelIDs,
		edgeLabelOff:   prev.edgeLabelOff,
		edgeLabelIDs:   prev.edgeLabelIDs,
		nodeLabelPatch: prev.nodeLabelPatch,
		edgeLabelPatch: prev.edgeLabelPatch,

		strings:  prev.strings,
		nodeCols: prev.nodeCols,
		edgeCols: prev.edgeCols,
	}

	// Node extension: ids, pointers, ordinal overlay, label runs.
	if len(addN) > 0 {
		ns.ordPatch = copyOrdMap(prev.ordPatch, len(addN))
		for i, id := range addN {
			nd, _ := g.Node(id)
			ns.nodeIDs = append(ns.nodeIDs, id)
			ns.nodes = append(ns.nodes, nd)
			ns.ordPatch[id] = int32(n + i)
			for _, l := range nd.Labels {
				ns.nodeLabelIDs = append(ns.nodeLabelIDs, prev.labelOf[l])
			}
			ns.nodeLabelOff = append(ns.nodeLabelOff, int32(len(ns.nodeLabelIDs)))
		}
	}

	// Edge extension, endpoints resolved through the extended ordinals.
	if len(addE) > 0 {
		ns.edgeOrdPatch = copyEdgeOrdMap(prev.edgeOrdPatch, len(addE))
		for i, id := range addE {
			ed, _ := g.Edge(id)
			su, ok1 := ns.Ord(ed.Src)
			du, ok2 := ns.Ord(ed.Dst)
			if !ok1 || !ok2 {
				return nil, false
			}
			ns.edgeIDs = append(ns.edgeIDs, id)
			ns.edges = append(ns.edges, ed)
			ns.edgeOrdPatch[id] = int32(m + i)
			ns.edgeSrc = append(ns.edgeSrc, su)
			ns.edgeDst = append(ns.edgeDst, du)
			for _, l := range ed.Labels {
				ns.edgeLabelIDs = append(ns.edgeLabelIDs, prev.labelOf[l])
			}
			ns.edgeLabelOff = append(ns.edgeLabelOff, int32(len(ns.edgeLabelIDs)))
		}
	}

	// Adjacency: the outer arrays are recopied (O(V) pointer copies),
	// the per-node runs stay shared except where a new edge lands —
	// appending through a capacity-clipped run reallocates just that
	// run.
	ns.outAdj = make([][]int32, newN)
	copy(ns.outAdj, prev.outAdj)
	ns.inAdj = make([][]int32, newN)
	copy(ns.inAdj, prev.inAdj)
	touchedOut := map[int32]bool{}
	touchedIn := map[int32]bool{}
	for i := range addE {
		e := int32(m + i)
		u, v := ns.edgeSrc[e], ns.edgeDst[e]
		ns.outAdj[u] = append(ns.outAdj[u], e)
		ns.inAdj[v] = append(ns.inAdj[v], e)
		touchedOut[u] = true
		touchedIn[v] = true
	}

	// Partitions: outer array recopied, a partition recopied only when
	// label-change surgery edits it; appended ordinals extend in place
	// (they exceed every existing ordinal, so order is preserved).
	ns.nodesByLabel = make([][]int32, len(prev.nodesByLabel))
	copy(ns.nodesByLabel, prev.nodesByLabel)
	ns.edgesByLabel = make([][]int32, len(prev.edgesByLabel))
	copy(ns.edgesByLabel, prev.edgesByLabel)

	if len(chNodeLabels) > 0 {
		ns.nodeLabelPatch = copyRunPatch(prev.nodeLabelPatch, len(chNodeLabels))
		edited := map[int32]bool{}
		for _, id := range chNodeLabels {
			u, ok := prev.Ord(id)
			if !ok {
				return nil, false
			}
			nd, _ := g.Node(id)
			oldRun := prev.nodeLabelRun(u)
			newRun := encodeRun(nd.Labels, prev.labelOf)
			partitionSurgery(ns.nodesByLabel, edited, oldRun, newRun, u)
			ns.nodeLabelPatch[u] = newRun
		}
	}
	if len(chEdgeLabels) > 0 {
		ns.edgeLabelPatch = copyRunPatch(prev.edgeLabelPatch, len(chEdgeLabels))
		edited := map[int32]bool{}
		for _, id := range chEdgeLabels {
			e, ok := prev.EdgeOrd(id)
			if !ok {
				return nil, false
			}
			ed, _ := g.Edge(id)
			oldRun := prev.edgeLabelRun(e)
			newRun := encodeRun(ed.Labels, prev.labelOf)
			partitionSurgery(ns.edgesByLabel, edited, oldRun, newRun, e)
			ns.edgeLabelPatch[e] = newRun
		}
	}
	for i, id := range addN {
		u := int32(n + i)
		nd, _ := g.Node(id)
		for _, l := range nd.Labels {
			lid := prev.labelOf[l]
			ns.nodesByLabel[lid] = append(ns.nodesByLabel[lid], u)
		}
	}
	for i, id := range addE {
		e := int32(m + i)
		ed, _ := g.Edge(id)
		for _, l := range ed.Labels {
			lid := prev.labelOf[l]
			ns.edgesByLabel[lid] = append(ns.edgesByLabel[lid], e)
		}
	}

	// Property columns. Project the delta onto per-key write lists —
	// changed elements first (ordinals below n, ascending), then added
	// ones, so each list ascends by ordinal.
	nodeWrites := map[string][]colWrite{}
	for _, id := range chNodeProps {
		u, ok := prev.Ord(id)
		if !ok {
			return nil, false
		}
		nd, _ := g.Node(id)
		projectWrites(nodeWrites, u, nd.Props, prev.nodeCols)
	}
	for i, id := range addN {
		nd, _ := g.Node(id)
		projectWrites(nodeWrites, int32(n+i), nd.Props, nil)
	}
	edgeWrites := map[string][]colWrite{}
	for _, id := range chEdgeProps {
		e, ok := prev.EdgeOrd(id)
		if !ok {
			return nil, false
		}
		ed, _ := g.Edge(id)
		projectWrites(edgeWrites, e, ed.Props, prev.edgeCols)
	}
	for i, id := range addE {
		ed, _ := g.Edge(id)
		projectWrites(edgeWrites, int32(m+i), ed.Props, nil)
	}

	// New string values extend the interner past its sorted prefix
	// (Bound's order invariant holds below SortedCount; stringEval
	// compares the extension region by string).
	ns.strings = extendInterner(prev.strings, collectNewStrings(prev, nodeWrites, edgeWrites))

	ns.nodeCols = applyCols(prev.nodeCols, nodeWrites, newN, ns.strings)
	ns.edgeCols = applyCols(prev.edgeCols, edgeWrites, newM, ns.strings)

	accountShare(prev, ns, info)
	return ns, true
}

func labelsKnown(ls ppg.Labels, labelOf map[string]int32) bool {
	for _, l := range ls {
		if _, ok := labelOf[l]; !ok {
			return false
		}
	}
	return true
}

// encodeRun interns a (sorted-by-name) label set; interned ids ascend
// with names, so the run is sorted by construction.
func encodeRun(ls ppg.Labels, labelOf map[string]int32) []int32 {
	run := make([]int32, len(ls))
	for i, l := range ls {
		run[i] = labelOf[l]
	}
	return run
}

// partitionSurgery moves ordinal x between the partitions its old and
// new label runs name, copying each edited partition once per apply.
func partitionSurgery(parts [][]int32, edited map[int32]bool, oldRun, newRun []int32, x int32) {
	edit := func(lid int32) {
		if !edited[lid] {
			parts[lid] = append([]int32(nil), parts[lid]...)
			edited[lid] = true
		}
	}
	for _, lid := range oldRun {
		if !containsInt32(newRun, lid) {
			edit(lid)
			parts[lid] = removeOrd(parts[lid], x)
		}
	}
	for _, lid := range newRun {
		if !containsInt32(oldRun, lid) {
			edit(lid)
			parts[lid] = insertOrd(parts[lid], x)
		}
	}
}

func containsInt32(run []int32, v int32) bool {
	for _, r := range run {
		if r == v {
			return true
		}
		if r > v {
			return false
		}
	}
	return false
}

func insertOrd(s []int32, x int32) []int32 {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= x })
	if i < len(s) && s[i] == x {
		return s
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = x
	return s
}

func removeOrd(s []int32, x int32) []int32 {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= x })
	if i < len(s) && s[i] == x {
		return append(s[:i], s[i+1:]...)
	}
	return s
}

// projectWrites turns one element's replacement property map into
// per-key writes: a set for every key in the new map and, for
// pre-existing elements (prevCols non-nil), a clear for every column
// the element was present in but whose key the new map lost.
func projectWrites(writes map[string][]colWrite, ord int32, props ppg.Properties, prevCols map[string]*PropCol) {
	for k, v := range props {
		writes[k] = append(writes[k], colWrite{ord: ord, val: v})
	}
	if prevCols == nil {
		return
	}
	for k, c := range prevCols {
		if _, still := props[k]; still {
			continue
		}
		if int(ord)>>6 < len(c.present) && c.Present(ord) {
			writes[k] = append(writes[k], colWrite{ord: ord, clear: true})
		}
	}
}

// finalKind evolves a column's kind under a write list: writes that
// are not singletons of the column's scalar kind demote it to
// overflow. Columns never re-promote incrementally — the next full
// build may.
func finalKind(k ColKind, ws []colWrite) ColKind {
	for _, w := range ws {
		if w.clear || k == ColOverflow {
			continue
		}
		if el, ok := w.val.Singleton(); !ok || scalarColKind(el) != k {
			return ColOverflow
		}
	}
	return k
}

// newColKind mirrors Build's inference for a column that did not
// exist: the first value decides the candidate kind, any later
// mismatch demotes to overflow.
func newColKind(ws []colWrite) ColKind {
	k := ColOverflow
	first := true
	for _, w := range ws {
		if w.clear {
			continue
		}
		sk := ColOverflow
		if el, ok := w.val.Singleton(); ok {
			sk = scalarColKind(el)
		}
		if first {
			k = sk
			first = false
		} else if sk != k {
			return ColOverflow
		}
		if k == ColOverflow {
			return ColOverflow
		}
	}
	return k
}

// collectNewStrings gathers the string payloads the delta introduces
// into columns that will carry a typed string array, minus those the
// interner already knows.
func collectNewStrings(prev *Snapshot, nodeWrites, edgeWrites map[string][]colWrite) []string {
	var out []string
	seen := map[string]bool{}
	gather := func(prevCols map[string]*PropCol, writes map[string][]colWrite) {
		for key, ws := range writes {
			k := ColKind(ColOverflow)
			if c := prevCols[key]; c != nil {
				k = finalKind(c.kind, ws)
			} else {
				k = newColKind(ws)
			}
			if k != ColString {
				continue
			}
			for _, w := range ws {
				if w.clear {
					continue
				}
				el, _ := w.val.Singleton()
				str, _ := el.AsString()
				if seen[str] {
					continue
				}
				if _, ok := prev.strings.Lookup(str); ok {
					continue
				}
				seen[str] = true
				out = append(out, str)
			}
		}
	}
	gather(prev.nodeCols, nodeWrites)
	gather(prev.edgeCols, edgeWrites)
	sort.Strings(out)
	return out
}

// extendInterner appends new strings past the sorted prefix. The base
// names array and ids map are shared with every previous version; only
// the extension overlay is copied.
func extendInterner(base *Interner, newStrings []string) *Interner {
	if len(newStrings) == 0 {
		return base
	}
	in := &Interner{
		names:  base.names,
		ids:    base.ids,
		sorted: base.sorted,
		extIds: make(map[string]int32, len(base.extIds)+len(newStrings)),
	}
	for s, id := range base.extIds {
		in.extIds[s] = id
	}
	for _, s := range newStrings {
		in.extIds[s] = int32(len(in.names))
		in.names = append(in.names, s)
	}
	return in
}

// applyCols rebuilds one column family under a write map: untouched
// columns are shared as-is (their arrays keep the old length; Present
// bounds-checks), append-only columns extend their arrays, and
// columns with writes below their length are recopied.
func applyCols(prevCols map[string]*PropCol, writes map[string][]colWrite, count int, in *Interner) map[string]*PropCol {
	if len(writes) == 0 {
		return prevCols
	}
	cols := make(map[string]*PropCol, len(prevCols)+len(writes))
	for k, c := range prevCols {
		if ws := writes[k]; len(ws) > 0 {
			cols[k] = rebuildCol(c, ws, count, in)
		} else {
			cols[k] = c
		}
	}
	for k, ws := range writes {
		if _, ok := prevCols[k]; !ok {
			cols[k] = newCol(ws, count, in)
		}
	}
	return cols
}

func rebuildCol(c *PropCol, ws []colWrite, count int, in *Interner) *PropCol {
	k := finalKind(c.kind, ws)
	words := (count + 63) / 64
	nc := &PropCol{kind: k}
	// The presence bitmap is always copied: setting a bit in a shared
	// word would race the previous version's readers.
	nc.present = make([]uint64, words)
	copy(nc.present, c.present)
	// Write lists ascend by ordinal, so appendOnly holds exactly when
	// every write lands past the column's current arrays.
	appendOnly := !ws[0].clear && ws[0].ord >= int32(len(c.sets))
	if appendOnly {
		nc.sets = grow(c.sets, count)
	} else {
		nc.sets = make([]value.Value, count)
		copy(nc.sets, c.sets)
	}
	if k == c.kind && k != ColOverflow {
		switch k {
		case ColInt, ColDate:
			if appendOnly {
				nc.ints = grow(c.ints, count)
			} else {
				nc.ints = make([]int64, count)
				copy(nc.ints, c.ints)
			}
		case ColFloat:
			if appendOnly {
				nc.floats = grow(c.floats, count)
			} else {
				nc.floats = make([]float64, count)
				copy(nc.floats, c.floats)
			}
		case ColString:
			if appendOnly {
				nc.strs = grow(c.strs, count)
			} else {
				nc.strs = make([]int32, count)
				copy(nc.strs, c.strs)
			}
		case ColBool:
			// Payload bitmap: same shared-word hazard, always copied.
			nc.bools = make([]uint64, words)
			copy(nc.bools, c.bools)
		}
	}
	for _, w := range ws {
		applyWrite(nc, w, in)
	}
	return nc
}

func newCol(ws []colWrite, count int, in *Interner) *PropCol {
	words := (count + 63) / 64
	nc := &PropCol{
		kind:    newColKind(ws),
		present: make([]uint64, words),
		sets:    make([]value.Value, count),
	}
	switch nc.kind {
	case ColInt, ColDate:
		nc.ints = make([]int64, count)
	case ColFloat:
		nc.floats = make([]float64, count)
	case ColString:
		nc.strs = make([]int32, count)
	case ColBool:
		nc.bools = make([]uint64, words)
	}
	for _, w := range ws {
		applyWrite(nc, w, in)
	}
	return nc
}

func applyWrite(c *PropCol, w colWrite, in *Interner) {
	if w.clear {
		bitClear(c.present, w.ord)
		c.sets[w.ord] = value.Value{}
		if c.bools != nil {
			bitClear(c.bools, w.ord)
		}
		return
	}
	bitSet(c.present, w.ord)
	c.sets[w.ord] = w.val
	if c.kind == ColOverflow {
		return
	}
	el, _ := w.val.Singleton()
	switch c.kind {
	case ColInt:
		c.ints[w.ord], _ = el.AsInt()
	case ColDate:
		c.ints[w.ord], _ = el.AsDateDays()
	case ColFloat:
		c.floats[w.ord], _ = el.AsFloat()
	case ColString:
		str, _ := el.AsString()
		id, _ := in.Lookup(str)
		c.strs[w.ord] = id
	case ColBool:
		if b, _ := el.AsBool(); b {
			bitSet(c.bools, w.ord)
		} else {
			bitClear(c.bools, w.ord)
		}
	}
}

func bitClear(bm []uint64, i int32) { bm[i>>6] &^= 1 << (uint(i) & 63) }

// grow pads s with zero values to length n; when spare capacity is
// available the padding lands past the previous version's length,
// which its readers never index (linear-chain sharing).
func grow[T any](s []T, n int) []T {
	if len(s) >= n {
		return s
	}
	return append(s, make([]T, n-len(s))...)
}

func dedupIDs[T ~uint64](ids []T) []T {
	if len(ids) == 0 {
		return nil
	}
	out := append([]T(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	w := 1
	for i := 1; i < len(out); i++ {
		if out[i] != out[i-1] {
			out[w] = out[i]
			w++
		}
	}
	return out[:w]
}

func dedupIDsExcl[T ~uint64](ids []T, excl map[T]bool) []T {
	d := dedupIDs(ids)
	out := d[:0]
	for _, id := range d {
		if !excl[id] {
			out = append(out, id)
		}
	}
	return out
}

func idSet[T ~uint64](ids []T) map[T]bool {
	s := make(map[T]bool, len(ids))
	for _, id := range ids {
		s[id] = true
	}
	return s
}

func copyOrdMap(m map[ppg.NodeID]int32, extra int) map[ppg.NodeID]int32 {
	out := make(map[ppg.NodeID]int32, len(m)+extra)
	for k, v := range m {
		out[k] = v
	}
	return out
}

func copyEdgeOrdMap(m map[ppg.EdgeID]int32, extra int) map[ppg.EdgeID]int32 {
	out := make(map[ppg.EdgeID]int32, len(m)+extra)
	for k, v := range m {
		out[k] = v
	}
	return out
}

func copyRunPatch(m map[int32][]int32, extra int) map[int32][]int32 {
	out := make(map[int32][]int32, len(m)+extra)
	for k, v := range m {
		out[k] = v
	}
	return out
}

// accountShare estimates the shared/copied byte split between two
// snapshot versions by comparing array backings: an array whose
// backing survived counts its common prefix as shared and its growth
// as copied; a reallocated or fresh array counts wholly as copied.
// Map overlays are not counted (they are bounded by the fallback
// gate); inner adjacency and partition runs are.
func accountShare(prev, ns *Snapshot, info *BuildInfo) {
	acctSlice(prev.nodeIDs, ns.nodeIDs, info)
	acctSlice(prev.nodes, ns.nodes, info)
	acctSlice(prev.edgeIDs, ns.edgeIDs, info)
	acctSlice(prev.edges, ns.edges, info)
	acctSlice(prev.edgeSrc, ns.edgeSrc, info)
	acctSlice(prev.edgeDst, ns.edgeDst, info)
	acctSlice(prev.nodeLabelOff, ns.nodeLabelOff, info)
	acctSlice(prev.nodeLabelIDs, ns.nodeLabelIDs, info)
	acctSlice(prev.edgeLabelOff, ns.edgeLabelOff, info)
	acctSlice(prev.edgeLabelIDs, ns.edgeLabelIDs, info)
	acctAdj(prev.outAdj, ns.outAdj, info)
	acctAdj(prev.inAdj, ns.inAdj, info)
	acctAdj(prev.nodesByLabel, ns.nodesByLabel, info)
	acctAdj(prev.edgesByLabel, ns.edgesByLabel, info)
	if prev.strings != nil && ns.strings != nil {
		acctSlice(prev.strings.names, ns.strings.names, info)
	}
	acctCols(prev.nodeCols, ns.nodeCols, info)
	acctCols(prev.edgeCols, ns.edgeCols, info)
}

func acctCols(prev, ns map[string]*PropCol, info *BuildInfo) {
	for k, nc := range ns {
		var pc *PropCol
		if prev != nil {
			pc = prev[k]
		}
		if pc == nil {
			pc = &PropCol{}
		}
		acctSlice(pc.present, nc.present, info)
		acctSlice(pc.sets, nc.sets, info)
		acctSlice(pc.ints, nc.ints, info)
		acctSlice(pc.floats, nc.floats, info)
		acctSlice(pc.strs, nc.strs, info)
		acctSlice(pc.bools, nc.bools, info)
	}
}

func acctAdj(prev, ns [][]int32, info *BuildInfo) {
	acctSlice(prev, ns, info)
	for i := range ns {
		var p []int32
		if i < len(prev) {
			p = prev[i]
		}
		acctSlice(p, ns[i], info)
	}
}

func acctSlice[T any](prev, ns []T, info *BuildInfo) {
	if len(ns) == 0 {
		return
	}
	var z T
	el := int64(unsafe.Sizeof(z))
	if len(prev) > 0 && &prev[0] == &ns[0] {
		info.BytesShared += el * int64(len(prev))
		info.BytesCopied += el * int64(len(ns)-len(prev))
		return
	}
	info.BytesCopied += el * int64(len(ns))
}

// Equivalent reports whether two snapshots of the same graph state
// are semantically interchangeable, tolerating the layout differences
// a delta apply legitimately introduces (retained-but-empty labels,
// columns demoted to overflow, all-absent columns, unsorted interner
// extensions). It also self-checks each snapshot's typed payloads
// against its mirrored sets. Test oracle for the incremental path.
func Equivalent(a, b *Snapshot) error {
	if err := selfCheck(a); err != nil {
		return fmt.Errorf("first snapshot: %w", err)
	}
	if err := selfCheck(b); err != nil {
		return fmt.Errorf("second snapshot: %w", err)
	}
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		return fmt.Errorf("size mismatch: %d/%d nodes, %d/%d edges",
			a.NumNodes(), b.NumNodes(), a.NumEdges(), b.NumEdges())
	}
	n, m := a.NumNodes(), a.NumEdges()
	for u := 0; u < n; u++ {
		if a.nodeIDs[u] != b.nodeIDs[u] {
			return fmt.Errorf("node ordinal %d: id %d vs %d", u, a.nodeIDs[u], b.nodeIDs[u])
		}
		if au, ok := a.Ord(a.nodeIDs[u]); !ok || au != int32(u) {
			return fmt.Errorf("first snapshot: Ord(%d) != %d", a.nodeIDs[u], u)
		}
		if bu, ok := b.Ord(a.nodeIDs[u]); !ok || bu != int32(u) {
			return fmt.Errorf("second snapshot: Ord(%d) != %d", a.nodeIDs[u], u)
		}
		if !labelNamesEqual(a, b, a.nodeLabelRun(int32(u)), b.nodeLabelRun(int32(u))) {
			return fmt.Errorf("node ordinal %d: label sets differ", u)
		}
		if !int32sEqual(a.Out(int32(u)), b.Out(int32(u))) {
			return fmt.Errorf("node ordinal %d: out adjacency differs", u)
		}
		if !int32sEqual(a.In(int32(u)), b.In(int32(u))) {
			return fmt.Errorf("node ordinal %d: in adjacency differs", u)
		}
	}
	for e := 0; e < m; e++ {
		if a.edgeIDs[e] != b.edgeIDs[e] {
			return fmt.Errorf("edge ordinal %d: id %d vs %d", e, a.edgeIDs[e], b.edgeIDs[e])
		}
		if ae, ok := a.EdgeOrd(a.edgeIDs[e]); !ok || ae != int32(e) {
			return fmt.Errorf("first snapshot: EdgeOrd(%d) != %d", a.edgeIDs[e], e)
		}
		if be, ok := b.EdgeOrd(a.edgeIDs[e]); !ok || be != int32(e) {
			return fmt.Errorf("second snapshot: EdgeOrd(%d) != %d", a.edgeIDs[e], e)
		}
		if a.Src(int32(e)) != b.Src(int32(e)) || a.Dst(int32(e)) != b.Dst(int32(e)) {
			return fmt.Errorf("edge ordinal %d: endpoints differ", e)
		}
		if !labelNamesEqual(a, b, a.edgeLabelRun(int32(e)), b.edgeLabelRun(int32(e))) {
			return fmt.Errorf("edge ordinal %d: label sets differ", e)
		}
	}
	// Partitions compared by label NAME: a delta apply may keep a name
	// whose last carrier was relabelled (empty partition), which Build
	// would drop entirely — both mean "no element matches".
	names := map[string]bool{}
	for _, l := range a.labelNames {
		names[l] = true
	}
	for _, l := range b.labelNames {
		names[l] = true
	}
	for l := range names {
		if !int32sEqual(a.NodesWithLabel(a.LabelID(l)), b.NodesWithLabel(b.LabelID(l))) {
			return fmt.Errorf("label %q: node partitions differ", l)
		}
		if !int32sEqual(a.EdgesWithLabel(a.LabelID(l)), b.EdgesWithLabel(b.LabelID(l))) {
			return fmt.Errorf("label %q: edge partitions differ", l)
		}
	}
	// Property columns compared per ordinal through the read API: a
	// missing column and an all-absent column are both "no element
	// carries the key".
	if err := colsEquivalent(a, b, n, true); err != nil {
		return err
	}
	if err := colsEquivalent(a, b, m, false); err != nil {
		return err
	}
	return nil
}

func colsEquivalent(a, b *Snapshot, count int, node bool) error {
	keys := map[string]bool{}
	fam := func(s *Snapshot) map[string]*PropCol {
		if node {
			return s.nodeCols
		}
		return s.edgeCols
	}
	for k := range fam(a) {
		keys[k] = true
	}
	for k := range fam(b) {
		keys[k] = true
	}
	read := func(s *Snapshot, ord int32, key string) value.Value {
		if node {
			return s.NodeProp(ord, key)
		}
		return s.EdgeProp(ord, key)
	}
	for key := range keys {
		for o := int32(0); o < int32(count); o++ {
			av, bv := read(a, o, key), read(b, o, key)
			if !value.Equal(av, bv) {
				return fmt.Errorf("key %q ordinal %d: %v vs %v", key, o, av, bv)
			}
		}
	}
	return nil
}

// selfCheck verifies a snapshot's internal consistency: typed column
// payloads must agree with the mirrored sets, and string identifiers
// must resolve through the interner to the mirrored string.
func selfCheck(s *Snapshot) error {
	check := func(cols map[string]*PropCol, count int, what string) error {
		for key, c := range cols {
			if c.kind == ColOverflow {
				continue
			}
			for o := int32(0); o < int32(count); o++ {
				if int(o)>>6 >= len(c.present) || !c.Present(o) {
					continue
				}
				el, ok := c.sets[o].Singleton()
				if !ok {
					return fmt.Errorf("%s column %q (kind %v) holds non-singleton at %d", what, key, c.kind, o)
				}
				switch c.kind {
				case ColInt:
					want, _ := el.AsInt()
					if c.ints[o] != want {
						return fmt.Errorf("%s column %q: int payload mismatch at %d", what, key, o)
					}
				case ColDate:
					want, _ := el.AsDateDays()
					if c.ints[o] != want {
						return fmt.Errorf("%s column %q: date payload mismatch at %d", what, key, o)
					}
				case ColFloat:
					want, _ := el.AsFloat()
					if c.floats[o] != want && !(math.IsNaN(c.floats[o]) && math.IsNaN(want)) {
						return fmt.Errorf("%s column %q: float payload mismatch at %d", what, key, o)
					}
				case ColString:
					want, _ := el.AsString()
					if int(c.strs[o]) >= s.strings.Count() || s.strings.Name(c.strs[o]) != want {
						return fmt.Errorf("%s column %q: string payload mismatch at %d", what, key, o)
					}
				case ColBool:
					want, _ := el.AsBool()
					if c.BoolAt(o) != want {
						return fmt.Errorf("%s column %q: bool payload mismatch at %d", what, key, o)
					}
				}
			}
		}
		return nil
	}
	if err := check(s.nodeCols, s.NumNodes(), "node"); err != nil {
		return err
	}
	return check(s.edgeCols, s.NumEdges(), "edge")
}

func labelNamesEqual(a, b *Snapshot, ra, rb []int32) bool {
	if len(ra) != len(rb) {
		return false
	}
	for i := range ra {
		if a.labelNames[ra[i]] != b.labelNames[rb[i]] {
			return false
		}
	}
	return true
}

func int32sEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
