package csr

import (
	"fmt"
	"testing"

	"gcore/internal/ppg"
	"gcore/internal/value"
)

// propGraph builds a graph whose node and edge properties cover every
// column shape: dense scalar columns of each kind, sparse columns,
// multi-valued FSET(V) sets and mixed-kind columns (both overflow).
func propGraph(t testing.TB) *ppg.Graph {
	t.Helper()
	g := ppg.New("props")
	names := []string{"Ada", "Bob", "Céline", "dave", "Ada"}
	for i := 0; i < 5; i++ {
		p := ppg.Properties{}
		p.Set("name", value.Str(names[i]))
		p.Set("age", value.Int(int64(20+i)))
		p.Set("score", value.Float(float64(i)/2))
		p.Set("active", value.Bool(i%2 == 0))
		p.Set("since", value.Date(int64(18000+i)))
		if i%2 == 0 {
			p.Set("sparse", value.Int(int64(i)))
		}
		if i == 3 {
			p.Set("employer", value.Set(value.Str("Acme"), value.Str("MIT")))
		} else if i != 4 {
			p.Set("employer", value.Str("Acme"))
		}
		// mixed kinds force the column to overflow
		if i%2 == 0 {
			p.Set("mixed", value.Int(int64(i)))
		} else {
			p.Set("mixed", value.Str("x"))
		}
		if err := g.AddNode(&ppg.Node{ID: ppg.NodeID(i + 1), Props: p}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		p := ppg.Properties{}
		p.Set("weight", value.Float(float64(i)*1.5))
		if i%2 == 1 {
			p.Set("tags", value.Set(value.Str("a"), value.Str("b")))
		}
		if err := g.AddEdge(&ppg.Edge{
			ID: ppg.EdgeID(100 + i), Src: ppg.NodeID(i + 1), Dst: ppg.NodeID(i + 2), Props: p,
		}); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// TestPropColumnKinds pins the kind classification: one typed column
// per scalar kind, overflow for multi-valued and mixed-kind columns.
func TestPropColumnKinds(t *testing.T) {
	s := Of(propGraph(t))
	want := map[string]ColKind{
		"name":     ColString,
		"age":      ColInt,
		"score":    ColFloat,
		"active":   ColBool,
		"since":    ColDate,
		"sparse":   ColInt,
		"employer": ColOverflow, // one node stores a two-element set
		"mixed":    ColOverflow, // int and string mixed
	}
	for key, k := range want {
		col := s.NodeCol(key)
		if col == nil {
			t.Fatalf("no column for %q", key)
		}
		if col.Kind() != k {
			t.Errorf("column %q: kind %v, want %v", key, col.Kind(), k)
		}
	}
	if col := s.NodeCol("absent"); col != nil {
		t.Errorf("column for never-set key: %v", col.Kind())
	}
	if col := s.EdgeCol("weight"); col == nil || col.Kind() != ColFloat {
		t.Errorf("edge weight column: %v", col)
	}
	if col := s.EdgeCol("tags"); col == nil || col.Kind() != ColOverflow {
		t.Errorf("edge tags column: %v", col)
	}
}

// TestInternerBound pins the binary-search contract Bound gives the
// typed string comparators: position of the search key in id order
// plus whether it is interned exactly.
func TestInternerBound(t *testing.T) {
	s := Of(propGraph(t))
	in := s.Strings()
	if in.Count() == 0 {
		t.Fatal("no interned strings")
	}
	// ids are assigned in sorted order, so Name is ascending.
	for i := 1; i < in.Count(); i++ {
		if in.Name(int32(i-1)) >= in.Name(int32(i)) {
			t.Fatalf("interner not sorted at %d: %q >= %q", i, in.Name(int32(i-1)), in.Name(int32(i)))
		}
	}
	for i := 0; i < in.Count(); i++ {
		pos, exact := in.Bound(in.Name(int32(i)))
		if !exact || pos != int32(i) {
			t.Errorf("Bound(%q) = (%d,%v), want (%d,true)", in.Name(int32(i)), pos, exact, i)
		}
	}
	// A string below, between, and above everything interned.
	if pos, exact := in.Bound(""); exact || pos != 0 {
		t.Errorf("Bound(\"\") = (%d,%v), want (0,false)", pos, exact)
	}
	if pos, exact := in.Bound("￿"); exact || pos != int32(in.Count()) {
		t.Errorf("Bound(high) = (%d,%v), want (%d,false)", pos, exact, in.Count())
	}
}

// TestPropReadEquivalence checks NodeProp/EdgeProp against the ppg
// property maps on the deterministic graph (the fuzz target below
// does the same over random shapes).
func TestPropReadEquivalence(t *testing.T) {
	g := propGraph(t)
	s := Of(g)
	keys := []string{"name", "age", "score", "active", "since", "sparse", "employer", "mixed", "absent"}
	for u := int32(0); u < int32(s.NumNodes()); u++ {
		nd := s.Node(u)
		for _, k := range keys {
			got, want := s.NodeProp(u, k), nd.Props.Get(k)
			if !value.Equal(got, want) {
				t.Errorf("node #%d prop %q: columnar %s, map %s", nd.ID, k, got, want)
			}
		}
	}
	for e := int32(0); e < int32(s.NumEdges()); e++ {
		ed := s.Edge(e)
		for _, k := range []string{"weight", "tags", "absent"} {
			got, want := s.EdgeProp(e, k), ed.Props.Get(k)
			if !value.Equal(got, want) {
				t.Errorf("edge #%d prop %q: columnar %s, map %s", ed.ID, k, got, want)
			}
		}
	}
}

// FuzzPropColumns drives the columnar property store with random
// graphs: whatever mix of kinds, multi-valued sets and absent keys a
// seed produces, NodeProp/EdgeProp must agree with Props.Get for
// every element and key — including keys never set anywhere.
func FuzzPropColumns(f *testing.F) {
	f.Add(uint32(1), uint8(8), uint8(12))
	f.Add(uint32(42), uint8(1), uint8(0))
	f.Add(uint32(7), uint8(40), uint8(90))
	f.Add(uint32(99), uint8(0), uint8(0))
	keys := []string{"a", "b", "c", "d"}
	f.Fuzz(func(t *testing.T, seed uint32, nNodes, nEdges uint8) {
		rnd := seed
		next := func(mod int) int {
			// xorshift: deterministic, no time dependence
			rnd ^= rnd << 13
			rnd ^= rnd >> 17
			rnd ^= rnd << 5
			return int(rnd % uint32(mod))
		}
		randVal := func() value.Value {
			switch next(8) {
			case 0:
				return value.Int(int64(next(100)))
			case 1:
				return value.Float(float64(next(100)) / 4)
			case 2:
				return value.Str(fmt.Sprintf("s%d", next(10)))
			case 3:
				return value.Bool(next(2) == 0)
			case 4:
				return value.Date(int64(next(1000)))
			case 5: // multi-valued FSET(V)
				return value.Set(value.Int(int64(next(10))), value.Str("t"))
			case 6: // empty set ≡ absent after normalisation
				return value.Set()
			default:
				return value.Null
			}
		}
		randProps := func() ppg.Properties {
			p := ppg.Properties{}
			for _, k := range keys {
				if next(3) == 0 {
					continue // absent
				}
				p.Set(k, randVal())
			}
			return p
		}

		g := ppg.New("fuzz")
		var ids []ppg.NodeID
		for i := 0; i < int(nNodes); i++ {
			id := ppg.NodeID(next(1000))
			if g.AddNode(&ppg.Node{ID: id, Props: randProps()}) == nil {
				ids = append(ids, id)
			}
		}
		if len(ids) > 0 {
			for i := 0; i < int(nEdges); i++ {
				_ = g.AddEdge(&ppg.Edge{
					ID:  ppg.EdgeID(10_000 + next(10_000)),
					Src: ids[next(len(ids))], Dst: ids[next(len(ids))],
					Props: randProps(),
				})
			}
		}

		s := Of(g)
		check := append(append([]string(nil), keys...), "never-set")
		for u := int32(0); u < int32(s.NumNodes()); u++ {
			nd := s.Node(u)
			for _, k := range check {
				got, want := s.NodeProp(u, k), nd.Props.Get(k)
				if !value.Equal(got, want) {
					t.Fatalf("node #%d prop %q: columnar %s, map %s", nd.ID, k, got, want)
				}
			}
		}
		for e := int32(0); e < int32(s.NumEdges()); e++ {
			ed := s.Edge(e)
			for _, k := range check {
				got, want := s.EdgeProp(e, k), ed.Props.Get(k)
				if !value.Equal(got, want) {
					t.Fatalf("edge #%d prop %q: columnar %s, map %s", ed.ID, k, got, want)
				}
			}
		}
	})
}
