package csr

import (
	"fmt"
	"testing"

	"gcore/internal/ppg"
	"gcore/internal/value"
)

// snapKind primes or refreshes g's cached snapshot through OfCounted
// and reports how it was obtained.
func snapKind(t *testing.T, g *ppg.Graph) (*Snapshot, BuildKind) {
	t.Helper()
	s, info := OfCounted(g)
	return s, info.Kind
}

// expectDelta asserts the next snapshot is a delta apply and that it
// is semantically identical to a from-scratch build of the graph.
func expectDelta(t *testing.T, g *ppg.Graph) *Snapshot {
	t.Helper()
	s, kind := snapKind(t, g)
	if kind != BuildDelta {
		t.Fatalf("snapshot kind = %v, want BuildDelta", kind)
	}
	if err := Equivalent(s, Build(g)); err != nil {
		t.Fatalf("delta-applied snapshot differs from full build: %v", err)
	}
	return s
}

// deltaGraph is testGraph plus properties, so every delta path (labels,
// adjacency, typed columns, interner) has material to work on.
func deltaGraph(t testing.TB) *ppg.Graph {
	t.Helper()
	g := testGraph(t)
	for i, id := range []ppg.NodeID{100, 7, 55} {
		p := ppg.Properties{}
		p.Set("name", value.Str(fmt.Sprintf("n%d", i)))
		p.Set("age", value.Int(int64(30+i)))
		p.Set("score", value.Float(float64(i)*0.5))
		if err := g.SetNodeProps(id, p); err != nil {
			t.Fatal(err)
		}
	}
	p := ppg.Properties{}
	p.Set("weight", value.Float(2.5))
	if err := g.SetEdgeProps(900, p); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestDeltaApplyAddNodeAndEdge(t *testing.T) {
	g := deltaGraph(t)
	if _, kind := snapKind(t, g); kind != BuildFull {
		t.Fatal("first snapshot should be a full build")
	}
	props := ppg.Properties{}
	props.Set("name", value.Str("zz-new-string")) // extends the interner
	props.Set("age", value.Int(99))
	if err := g.AddNode(&ppg.Node{ID: 300, Labels: ppg.NewLabels("Person"), Props: props}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(&ppg.Edge{ID: 1000, Src: 300, Dst: 100, Labels: ppg.NewLabels("knows")}); err != nil {
		t.Fatal(err)
	}
	expectDelta(t, g)
}

func TestDeltaApplyLabelChange(t *testing.T) {
	g := deltaGraph(t)
	snapKind(t, g)
	// Move node 100 out of Person into Manager|City; Person keeps other
	// carriers, and node 3 gains its first label.
	if err := g.SetNodeLabels(100, ppg.NewLabels("Manager", "City")); err != nil {
		t.Fatal(err)
	}
	if err := g.SetNodeLabels(3, ppg.NewLabels("Person")); err != nil {
		t.Fatal(err)
	}
	if err := g.SetEdgeLabels(20, ppg.NewLabels("likes")); err != nil {
		t.Fatal(err)
	}
	expectDelta(t, g)
}

func TestDeltaApplyEmptiedPartition(t *testing.T) {
	g := deltaGraph(t)
	snapKind(t, g)
	// Tag has exactly one carrier; after the change its partition is
	// empty in the incremental snapshot and absent from a full build —
	// Equivalent must treat those the same, and queries see no carrier
	// either way.
	if err := g.SetNodeLabels(200, ppg.NewLabels("Person")); err != nil {
		t.Fatal(err)
	}
	s := expectDelta(t, g)
	if got := s.NodesWithLabel(s.LabelID("Tag")); len(got) != 0 {
		t.Fatalf("emptied partition still lists %v", got)
	}
}

func TestDeltaApplyPropChanges(t *testing.T) {
	g := deltaGraph(t)
	snapKind(t, g)
	// One element: change a value, drop a key, add a key (new column),
	// demote a typed column with a mismatched kind.
	p := ppg.Properties{}
	p.Set("name", value.Str("renamed"))
	p.Set("brand", value.Str("acme")) // new column
	p.Set("age", value.Str("old"))    // ColInt -> overflow demotion
	if err := g.SetNodeProps(100, p); err != nil {
		t.Fatal(err)
	}
	s := expectDelta(t, g)
	if s.NodeCol("age").Kind() != ColOverflow {
		t.Fatal("mismatched write should demote the column to overflow")
	}

	// Append-only writes on a fresh round: a new node's props extend
	// columns without touching existing ordinals.
	p2 := ppg.Properties{}
	p2.Set("age", value.Int(1))
	p2.Set("score", value.Float(9.5))
	if err := g.AddNode(&ppg.Node{ID: 400, Props: p2}); err != nil {
		t.Fatal(err)
	}
	expectDelta(t, g)
}

func TestDeltaApplyZeroOps(t *testing.T) {
	g := deltaGraph(t)
	s1, _ := snapKind(t, g)
	// Path mutations bump the generation but are not materialised in
	// the snapshot: the delta is empty and the apply is a retag.
	if err := g.AddPath(&ppg.Path{ID: 1, Nodes: []ppg.NodeID{100, 7}, Edges: []ppg.EdgeID{900}}); err != nil {
		t.Fatal(err)
	}
	s2 := expectDelta(t, g)
	if s2 == s1 {
		t.Fatal("zero-op apply must still produce a new generation tag")
	}
	if s2.Generation() != g.Generation() {
		t.Fatal("zero-op apply has a stale generation")
	}
}

func TestDeltaChain(t *testing.T) {
	g := deltaGraph(t)
	snapKind(t, g)
	id := ppg.NodeID(1000)
	eid := ppg.EdgeID(2000)
	for round := 0; round < 12; round++ {
		p := ppg.Properties{}
		p.Set("age", value.Int(int64(round)))
		p.Set("name", value.Str(fmt.Sprintf("chain-%d", round)))
		if err := g.AddNode(&ppg.Node{ID: id, Labels: ppg.NewLabels("Person"), Props: p}); err != nil {
			t.Fatal(err)
		}
		if err := g.AddEdge(&ppg.Edge{ID: eid, Src: id, Dst: 100, Labels: ppg.NewLabels("knows")}); err != nil {
			t.Fatal(err)
		}
		if round%3 == 0 {
			if err := g.SetNodeLabels(7, ppg.NewLabels("Person")); err != nil {
				t.Fatal(err)
			}
			if err := g.SetNodeLabels(7, ppg.NewLabels("Person", "Manager")); err != nil {
				t.Fatal(err)
			}
		}
		id++
		eid++
		expectDelta(t, g)
	}
}

func TestDeltaSharingLeavesOldSnapshotIntact(t *testing.T) {
	g := deltaGraph(t)
	old, _ := snapKind(t, g)
	oldState := Build(g) // independent image of the pre-mutation state

	p := ppg.Properties{}
	p.Set("name", value.Str("mutant"))
	p.Set("fresh", value.Int(1))
	if err := g.SetNodeProps(100, p); err != nil {
		t.Fatal(err)
	}
	if err := g.AddNode(&ppg.Node{ID: 999, Labels: ppg.NewLabels("Person"), Props: p}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(&ppg.Edge{ID: 998, Src: 999, Dst: 7, Labels: ppg.NewLabels("likes")}); err != nil {
		t.Fatal(err)
	}
	if err := g.SetNodeLabels(55, ppg.NewLabels("Tag")); err != nil {
		t.Fatal(err)
	}
	expectDelta(t, g)

	// The new snapshot shares arrays with the old one; the old one must
	// still read exactly as the pre-mutation state.
	if err := Equivalent(old, oldState); err != nil {
		t.Fatalf("previous snapshot changed under structural sharing: %v", err)
	}
}

func TestDeltaSharingAccounting(t *testing.T) {
	g := deltaGraph(t)
	snapKind(t, g)
	if err := g.AddNode(&ppg.Node{ID: 500, Labels: ppg.NewLabels("Person")}); err != nil {
		t.Fatal(err)
	}
	_, info := OfCounted(g)
	if info.Kind != BuildDelta {
		t.Fatalf("kind = %v, want BuildDelta", info.Kind)
	}
	if info.DeltaOps != 1 {
		t.Fatalf("DeltaOps = %d, want 1", info.DeltaOps)
	}
	if info.BytesShared == 0 {
		t.Fatal("delta apply reports zero shared bytes")
	}
}

func TestDeltaFallbackNewLabel(t *testing.T) {
	g := deltaGraph(t)
	snapKind(t, g)
	// A label the snapshot has never interned cannot be appended.
	if err := g.AddNode(&ppg.Node{ID: 600, Labels: ppg.NewLabels("Alien")}); err != nil {
		t.Fatal(err)
	}
	s, kind := snapKind(t, g)
	if kind != BuildFallback {
		t.Fatalf("kind = %v, want BuildFallback", kind)
	}
	if err := Equivalent(s, Build(g)); err != nil {
		t.Fatal(err)
	}
	// The fallback rebuilt and re-primed recording: the next delta
	// knows the new label universe and applies incrementally.
	if err := g.AddNode(&ppg.Node{ID: 601, Labels: ppg.NewLabels("Alien")}); err != nil {
		t.Fatal(err)
	}
	expectDelta(t, g)
}

func TestDeltaFallbackNonMonotonicID(t *testing.T) {
	g := deltaGraph(t)
	snapKind(t, g)
	// 50 is below the snapshot's max node id 200: appending would break
	// the ordinal order invariant.
	if err := g.AddNode(&ppg.Node{ID: 50}); err != nil {
		t.Fatal(err)
	}
	s, kind := snapKind(t, g)
	if kind != BuildFallback {
		t.Fatalf("kind = %v, want BuildFallback", kind)
	}
	if err := Equivalent(s, Build(g)); err != nil {
		t.Fatal(err)
	}
}

func TestDeltaFallbackOversizedDelta(t *testing.T) {
	g := deltaGraph(t)
	snapKind(t, g)
	// More recorded ops than deltaOpsFloor on a tiny graph: the size
	// gate declines and the full build re-densifies.
	p := ppg.Properties{}
	p.Set("age", value.Int(1))
	for i := 0; i < deltaOpsFloor+8; i++ {
		if err := g.SetNodeProps(100, p); err != nil {
			t.Fatal(err)
		}
	}
	if _, kind := snapKind(t, g); kind != BuildFallback {
		t.Fatal("oversized delta should fall back")
	}
}

func TestDeltaDroppedByTouchProps(t *testing.T) {
	g := deltaGraph(t)
	snapKind(t, g)
	g.TouchProps() // unattributable mutation: recording stops
	if _, kind := snapKind(t, g); kind != BuildFull {
		t.Fatal("TouchProps should force a full rebuild")
	}
	// Recording restarts with the rebuild.
	if err := g.AddNode(&ppg.Node{ID: 700}); err != nil {
		t.Fatal(err)
	}
	expectDelta(t, g)
}

func TestDeltaDroppedByOverflow(t *testing.T) {
	defer func(old int) { ppg.MaxDeltaOps = old }(ppg.MaxDeltaOps)
	ppg.MaxDeltaOps = 4
	g := deltaGraph(t)
	snapKind(t, g)
	p := ppg.Properties{}
	p.Set("age", value.Int(2))
	for i := 0; i < 6; i++ {
		if err := g.SetNodeProps(7, p); err != nil {
			t.Fatal(err)
		}
	}
	if _, kind := snapKind(t, g); kind != BuildFull {
		t.Fatal("overflowed delta buffer should force a full rebuild")
	}
}

func TestDeltaDroppedByReplaceWith(t *testing.T) {
	g := deltaGraph(t)
	snapKind(t, g)
	if err := g.ReplaceWith(testGraph(t)); err != nil {
		t.Fatal(err)
	}
	s, kind := snapKind(t, g)
	if kind != BuildFull {
		t.Fatal("ReplaceWith should force a full rebuild")
	}
	if err := Equivalent(s, Build(g)); err != nil {
		t.Fatal(err)
	}
}

func TestCloneStartsFreshChain(t *testing.T) {
	g := deltaGraph(t)
	snapKind(t, g)
	if err := g.AddNode(&ppg.Node{ID: 800, Labels: ppg.NewLabels("Person")}); err != nil {
		t.Fatal(err)
	}
	s := expectDelta(t, g)

	// A clone has its own cache and delta chain: its first snapshot is
	// a full build sharing nothing with g's, and mutating the clone
	// must not disturb g's snapshot.
	cp := g.Clone()
	cs, kind := snapKind(t, cp)
	if kind != BuildFull {
		t.Fatalf("clone's first snapshot kind = %v, want BuildFull", kind)
	}
	if err := g.SetNodeLabels(800, ppg.NewLabels("Manager")); err != nil {
		t.Fatal(err)
	}
	expectDelta(t, g)
	if err := Equivalent(cs, Build(cp)); err != nil {
		t.Fatalf("clone snapshot affected by original's mutations: %v", err)
	}
	if n := s.NumNodes(); n != cp.NumNodes() {
		t.Fatalf("pre-mutation snapshot resized: %d vs %d", n, cp.NumNodes())
	}
}

func TestDisableIncrementalKnob(t *testing.T) {
	var off bool
	old := disableIncremental
	disableIncremental = &off
	defer func() { disableIncremental = old }()

	g := deltaGraph(t)
	snapKind(t, g)
	off = true
	if err := g.AddNode(&ppg.Node{ID: 900}); err != nil {
		t.Fatal(err)
	}
	if _, kind := snapKind(t, g); kind != BuildFull {
		t.Fatal("knob on: snapshot should be a full rebuild")
	}
	off = false
	if err := g.AddNode(&ppg.Node{ID: 901}); err != nil {
		t.Fatal(err)
	}
	expectDelta(t, g)
}

// BenchmarkSnapshotDelta pits one mutation + snapshot against the two
// maintenance strategies on a chain-heavy graph: delta apply versus
// full rebuild.
func BenchmarkSnapshotDelta(b *testing.B) {
	build := func(n int) *ppg.Graph {
		g := ppg.New("bench")
		for i := 0; i < n; i++ {
			p := ppg.Properties{}
			p.Set("age", value.Int(int64(i%80)))
			p.Set("name", value.Str(fmt.Sprintf("p%d", i%500)))
			if err := g.AddNode(&ppg.Node{ID: ppg.NodeID(i + 1), Labels: ppg.NewLabels("Person"), Props: p}); err != nil {
				b.Fatal(err)
			}
		}
		for i := 0; i < n-1; i++ {
			if err := g.AddEdge(&ppg.Edge{
				ID: ppg.EdgeID(1_000_000 + i), Src: ppg.NodeID(i + 1), Dst: ppg.NodeID(i + 2),
				Labels: ppg.NewLabels("knows"),
			}); err != nil {
				b.Fatal(err)
			}
		}
		return g
	}
	const n = 20_000
	for _, mode := range []string{"delta-apply", "full-rebuild"} {
		b.Run(mode, func(b *testing.B) {
			off := mode == "full-rebuild"
			old := disableIncremental
			disableIncremental = &off
			defer func() { disableIncremental = old }()
			g := build(n)
			Of(g)
			p := ppg.Properties{}
			p.Set("age", value.Int(33))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				id := ppg.NodeID(n + 10 + i)
				if err := g.AddNode(&ppg.Node{ID: id, Labels: ppg.NewLabels("Person"), Props: p}); err != nil {
					b.Fatal(err)
				}
				if err := g.AddEdge(&ppg.Edge{
					ID: ppg.EdgeID(2_000_000 + i), Src: id, Dst: 1, Labels: ppg.NewLabels("knows"),
				}); err != nil {
					b.Fatal(err)
				}
				Of(g)
			}
		})
	}
}
