package par

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Fatalf("Workers(3) = %d", got)
	}
	if got := Workers(0); got < 1 {
		t.Fatalf("Workers(0) = %d, want >= 1", got)
	}
	if got := Workers(-2); got < 1 {
		t.Fatalf("Workers(-2) = %d, want >= 1", got)
	}
}

// TestMapChunksOrder: concatenating chunk results in returned order
// must reproduce the sequential order, for every worker count.
func TestMapChunksOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 64} {
		for _, n := range []int{0, 1, 2, 7, 100} {
			parts, err := MapChunks(n, workers, func(lo, hi int) ([]int, error) {
				out := make([]int, 0, hi-lo)
				for i := lo; i < hi; i++ {
					out = append(out, i*i)
				}
				return out, nil
			})
			if err != nil {
				t.Fatal(err)
			}
			var flat []int
			for _, p := range parts {
				flat = append(flat, p...)
			}
			if len(flat) != n {
				t.Fatalf("workers=%d n=%d: got %d items", workers, n, len(flat))
			}
			for i, v := range flat {
				if v != i*i {
					t.Fatalf("workers=%d n=%d: item %d = %d, want %d", workers, n, i, v, i*i)
				}
			}
		}
	}
}

// TestMapChunksError: the error of the chunk containing the smallest
// failing index is the one reported, matching what a sequential left-
// to-right loop would surface first.
func TestMapChunksError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		_, err := MapChunks(100, workers, func(lo, hi int) (int, error) {
			for i := lo; i < hi; i++ {
				if i >= 20 {
					return 0, fmt.Errorf("err@%d", i)
				}
			}
			return 0, nil
		})
		if err == nil || err.Error() != "err@20" {
			t.Fatalf("workers=%d: err = %v, want err@20", workers, err)
		}
	}
}

func TestForEachIdx(t *testing.T) {
	for _, workers := range []int{1, 2, 16} {
		n := 200
		hits := make([]int32, n)
		err := ForEachIdx(n, workers, func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, h)
			}
		}
	}
}

func TestForEachIdxError(t *testing.T) {
	err := ForEachIdx(100, 8, func(i int) error {
		if i >= 70 {
			return fmt.Errorf("late %d", i)
		}
		if i >= 30 {
			return errors.New("first")
		}
		return nil
	})
	if err == nil || err.Error() != "first" {
		t.Fatalf("err = %v, want the lowest-index error", err)
	}
}
