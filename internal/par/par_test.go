package par

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"gcore/internal/gov"
)

func TestWorkers(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Fatalf("Workers(3) = %d", got)
	}
	if got := Workers(0); got < 1 {
		t.Fatalf("Workers(0) = %d, want >= 1", got)
	}
	if got := Workers(-2); got < 1 {
		t.Fatalf("Workers(-2) = %d, want >= 1", got)
	}
}

// TestMapChunksOrder: concatenating chunk results in returned order
// must reproduce the sequential order, for every worker count.
func TestMapChunksOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 64} {
		for _, n := range []int{0, 1, 2, 7, 100} {
			parts, err := MapChunks(context.Background(), n, workers, func(lo, hi int) ([]int, error) {
				out := make([]int, 0, hi-lo)
				for i := lo; i < hi; i++ {
					out = append(out, i*i)
				}
				return out, nil
			})
			if err != nil {
				t.Fatal(err)
			}
			var flat []int
			for _, p := range parts {
				flat = append(flat, p...)
			}
			if len(flat) != n {
				t.Fatalf("workers=%d n=%d: got %d items", workers, n, len(flat))
			}
			for i, v := range flat {
				if v != i*i {
					t.Fatalf("workers=%d n=%d: item %d = %d, want %d", workers, n, i, v, i*i)
				}
			}
		}
	}
}

// TestMapChunksError: the error of the chunk containing the smallest
// failing index is the one reported, matching what a sequential left-
// to-right loop would surface first.
func TestMapChunksError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		_, err := MapChunks(context.Background(), 100, workers, func(lo, hi int) (int, error) {
			for i := lo; i < hi; i++ {
				if i >= 20 {
					return 0, fmt.Errorf("err@%d", i)
				}
			}
			return 0, nil
		})
		if err == nil || err.Error() != "err@20" {
			t.Fatalf("workers=%d: err = %v, want err@20", workers, err)
		}
	}
}

func TestForEachIdx(t *testing.T) {
	for _, workers := range []int{1, 2, 16} {
		n := 200
		hits := make([]int32, n)
		err := ForEachIdx(context.Background(), n, workers, func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, h)
			}
		}
	}
}

func TestForEachIdxError(t *testing.T) {
	err := ForEachIdx(context.Background(), 100, 8, func(i int) error {
		if i >= 70 {
			return fmt.Errorf("late %d", i)
		}
		if i >= 30 {
			return errors.New("first")
		}
		return nil
	})
	if err == nil || err.Error() != "first" {
		t.Fatalf("err = %v, want the lowest-index error", err)
	}
}

// TestMapChunksCanceledContext: an already-cancelled context stops
// dispatch and surfaces a typed KindCanceled error; no chunk runs.
func TestMapChunksCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	_, err := MapChunks(ctx, 1000, 8, func(lo, hi int) (int, error) {
		ran.Add(1)
		return 0, nil
	})
	qe, ok := gov.AsQueryError(err)
	if !ok || qe.Kind != gov.KindCanceled {
		t.Fatalf("err = %v, want KindCanceled", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("%d chunks ran under a dead context", ran.Load())
	}
}

// TestMapChunksCancelMidFlight: cancellation raised from inside a
// chunk stops the remaining dispatch.
func TestMapChunksCancelMidFlight(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran atomic.Int32
	_, err := MapChunks(ctx, 10_000, 4, func(lo, hi int) (int, error) {
		if ran.Add(1) == 1 {
			cancel()
		}
		return 0, nil
	})
	if _, ok := gov.AsQueryError(err); !ok {
		t.Fatalf("err = %v, want a typed QueryError", err)
	}
	// 4 workers can each have claimed at most a chunk or two before
	// observing the cancel; all 16+ chunks must not have run.
	if int(ran.Load()) >= chunkCount(10_000, 4) {
		t.Fatalf("all %d chunks ran despite cancellation", ran.Load())
	}
}

// TestMapChunksPanicContained: a panicking chunk surfaces as a
// KindInternal error instead of crashing the process.
func TestMapChunksPanicContained(t *testing.T) {
	_, err := MapChunks(context.Background(), 100, 4, func(lo, hi int) (int, error) {
		if lo == 0 {
			panic("chunk boom")
		}
		return 0, nil
	})
	qe, ok := gov.AsQueryError(err)
	if !ok || qe.Kind != gov.KindInternal {
		t.Fatalf("err = %v, want KindInternal", err)
	}
	if !strings.Contains(qe.Msg, "chunk boom") {
		t.Fatalf("panic message lost: %q", qe.Msg)
	}
}

// TestForEachIdxPanicContained: same containment for the index pool.
func TestForEachIdxPanicContained(t *testing.T) {
	err := ForEachIdx(context.Background(), 50, 4, func(i int) error {
		if i == 7 {
			panic(fmt.Sprintf("idx %d boom", i))
		}
		return nil
	})
	qe, ok := gov.AsQueryError(err)
	if !ok || qe.Kind != gov.KindInternal {
		t.Fatalf("err = %v, want KindInternal", err)
	}
}

// TestForEachIdxCanceled: dispatch stops and the cancellation is
// surfaced even when every dispatched index succeeded.
func TestForEachIdxCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := ForEachIdx(ctx, 100, 8, func(i int) error { return nil })
	qe, ok := gov.AsQueryError(err)
	if !ok || qe.Kind != gov.KindCanceled {
		t.Fatalf("err = %v, want KindCanceled", err)
	}
}
