// Package par is the evaluator's small worker-pool utility. It runs
// chunked fan-out/fan-in jobs with a deterministic merge: inputs are
// partitioned into contiguous chunks, chunks execute concurrently,
// and results are combined in input order. Callers that append the
// per-chunk outputs in the returned order therefore produce exactly
// the sequence a sequential loop would have produced — which is how
// the query evaluator keeps parallel and sequential evaluation
// byte-identical (the paper's fixed-order tie-breaking, §A.1
// footnote 4, extended to the whole binding pipeline).
//
// The pool is governed: jobs take a context, a cancelled context
// stops further chunks from being dispatched (in-flight chunks
// observe cancellation at their own checkpoints), and a panicking
// chunk is contained in its worker and surfaced as a typed
// gov.QueryError instead of tearing the process down — one
// pathological query cannot take out a process hosting other
// sessions.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"gcore/internal/faultinject"
	"gcore/internal/gov"
)

// Workers resolves a parallelism knob: n itself when positive, else
// runtime.GOMAXPROCS. A result of 1 means "run sequentially".
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// chunkCount picks how many contiguous chunks to cut n items into for
// w workers: enough slack (4 per worker) that an unlucky expensive
// chunk does not serialise the tail, but never more chunks than items.
func chunkCount(n, w int) int {
	c := w * 4
	if c > n {
		c = n
	}
	if c < 1 {
		c = 1
	}
	return c
}

// protect runs one chunk with panic containment: a panic inside fn
// becomes a KindInternal error in that chunk's slot, merged like any
// other chunk error.
func protect[T any](fn func() (T, error)) (res T, err error) {
	defer func() {
		if r := recover(); r != nil {
			var zero T
			res, err = zero, gov.PanicError(r, "")
		}
	}()
	return fn()
}

// MapChunks partitions [0, n) into contiguous chunks, runs fn(lo, hi)
// on each chunk with up to `workers` goroutines, and returns the
// per-chunk results in chunk (= input) order. If any chunk fails, the
// error of the lowest-indexed failing chunk is returned, so the error
// surfaced is the one sequential evaluation would have hit first.
// With workers <= 1 (or n <= 1) everything runs on the calling
// goroutine with no synchronisation (and no panic containment — the
// statement-level recover owns sequential panics, keeping sequential
// and parallel failure surfaces identical to the caller).
//
// A cancelled ctx stops workers from claiming further chunks; if no
// dispatched chunk reported a more specific error, the cancellation
// itself is surfaced as a typed gov.QueryError.
func MapChunks[T any](ctx context.Context, n, workers int, fn func(lo, hi int) (T, error)) ([]T, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if n <= 0 {
		return nil, nil
	}
	if workers <= 1 || n == 1 {
		out := make([]T, 1)
		res, err := fn(0, n)
		if err != nil {
			return nil, err
		}
		out[0] = res
		return out, nil
	}
	chunks := chunkCount(n, workers)
	bounds := make([]int, chunks+1)
	for i := 0; i <= chunks; i++ {
		bounds[i] = i * n / chunks
	}
	results := make([]T, chunks)
	errs := make([]error, chunks)
	done := ctx.Done()
	var next atomic.Int64
	var wg sync.WaitGroup
	if workers > chunks {
		workers = chunks
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				// Dispatch checkpoint: stop claiming chunks once the
				// context dies; chunks already running observe the
				// cancellation at their own evaluation checkpoints.
				select {
				case <-done:
					return
				default:
				}
				i := int(next.Add(1)) - 1
				if i >= chunks {
					return
				}
				results[i], errs[i] = protect(func() (T, error) {
					if err := faultinject.Check(faultinject.SiteParChunk); err != nil {
						var zero T
						return zero, err
					}
					return fn(bounds[i], bounds[i+1])
				})
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := gov.CancelError(ctx); err != nil {
		return nil, err
	}
	return results, nil
}

// ForEachIdx runs fn(i) for every i in [0, n) with up to `workers`
// goroutines. Each index is visited exactly once; fn must confine its
// writes to per-index state (e.g. slot i of a pre-allocated slice).
// The lowest-index error wins, cancellation stops dispatch, and
// panics are contained, as in MapChunks.
func ForEachIdx(ctx context.Context, n, workers int, fn func(i int) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if n <= 0 {
		return nil
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	done := ctx.Done()
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				_, errs[i] = protect(func() (struct{}, error) {
					if err := faultinject.Check(faultinject.SiteParChunk); err != nil {
						return struct{}{}, err
					}
					return struct{}{}, fn(i)
				})
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return gov.CancelError(ctx)
}
