// Package par is the evaluator's small worker-pool utility. It runs
// chunked fan-out/fan-in jobs with a deterministic merge: inputs are
// partitioned into contiguous chunks, chunks execute concurrently,
// and results are combined in input order. Callers that append the
// per-chunk outputs in the returned order therefore produce exactly
// the sequence a sequential loop would have produced — which is how
// the query evaluator keeps parallel and sequential evaluation
// byte-identical (the paper's fixed-order tie-breaking, §A.1
// footnote 4, extended to the whole binding pipeline).
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a parallelism knob: n itself when positive, else
// runtime.GOMAXPROCS. A result of 1 means "run sequentially".
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// chunkCount picks how many contiguous chunks to cut n items into for
// w workers: enough slack (4 per worker) that an unlucky expensive
// chunk does not serialise the tail, but never more chunks than items.
func chunkCount(n, w int) int {
	c := w * 4
	if c > n {
		c = n
	}
	if c < 1 {
		c = 1
	}
	return c
}

// MapChunks partitions [0, n) into contiguous chunks, runs fn(lo, hi)
// on each chunk with up to `workers` goroutines, and returns the
// per-chunk results in chunk (= input) order. If any chunk fails, the
// error of the lowest-indexed failing chunk is returned, so the error
// surfaced is the one sequential evaluation would have hit first.
// With workers <= 1 (or n <= 1) everything runs on the calling
// goroutine with no synchronisation.
func MapChunks[T any](n, workers int, fn func(lo, hi int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	if workers <= 1 || n == 1 {
		out := make([]T, 1)
		res, err := fn(0, n)
		if err != nil {
			return nil, err
		}
		out[0] = res
		return out, nil
	}
	chunks := chunkCount(n, workers)
	bounds := make([]int, chunks+1)
	for i := 0; i <= chunks; i++ {
		bounds[i] = i * n / chunks
	}
	results := make([]T, chunks)
	errs := make([]error, chunks)
	var next atomic.Int64
	var wg sync.WaitGroup
	if workers > chunks {
		workers = chunks
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= chunks {
					return
				}
				results[i], errs[i] = fn(bounds[i], bounds[i+1])
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// ForEachIdx runs fn(i) for every i in [0, n) with up to `workers`
// goroutines. Each index is visited exactly once; fn must confine its
// writes to per-index state (e.g. slot i of a pre-allocated slice).
// The lowest-index error wins, as in MapChunks.
func ForEachIdx(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
