package catalog

import (
	"strings"
	"testing"

	"gcore/internal/ppg"
	"gcore/internal/table"
	"gcore/internal/value"
)

func graph(t *testing.T, name string, ids ...ppg.NodeID) *ppg.Graph {
	t.Helper()
	g := ppg.New(name)
	for _, id := range ids {
		if err := g.AddNode(&ppg.Node{ID: id}); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestRegisterAndResolve(t *testing.T) {
	c := New()
	if err := c.RegisterGraph(graph(t, "g1", 5, 9)); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterGraph(graph(t, "g2", 7)); err != nil {
		t.Fatal(err)
	}
	if got, ok := c.Graph("g1"); !ok || got.NumNodes() != 2 {
		t.Error("Graph lookup failed")
	}
	if _, ok := c.Graph("missing"); ok {
		t.Error("missing graph resolved")
	}
	if g, err := c.Resolve("g2"); err != nil || g.NumNodes() != 1 {
		t.Errorf("Resolve = %v, %v", g, err)
	}
	if _, err := c.Resolve("nope"); err == nil {
		t.Error("Resolve of unknown name must fail")
	}
	// First registered graph is the default.
	if c.Default() == nil || c.DefaultName() != "g1" {
		t.Errorf("default = %q", c.DefaultName())
	}
	if err := c.SetDefault("g2"); err != nil || c.DefaultName() != "g2" {
		t.Error("SetDefault failed")
	}
	if err := c.SetDefault("nope"); err == nil {
		t.Error("SetDefault of unknown graph must fail")
	}
	names := c.GraphNames()
	if strings.Join(names, ",") != "g1,g2" {
		t.Errorf("GraphNames = %v", names)
	}
	// Identifiers are reserved past registered graphs.
	if id := c.IDs().NextNode(); uint64(id) <= 9 {
		t.Errorf("generated id %d collides", id)
	}
	// Nameless graph is rejected.
	if err := c.RegisterGraph(ppg.New("")); err == nil {
		t.Error("nameless graph must be rejected")
	}
}

func TestTablesAndNameClashes(t *testing.T) {
	c := New()
	if err := c.RegisterGraph(graph(t, "g", 1)); err != nil {
		t.Fatal(err)
	}
	tb := table.New("orders", "a", "b")
	if err := tb.AddRow(value.Str("x"), value.Int(1)); err != nil {
		t.Fatal(err)
	}
	if err := tb.AddRow(value.Str("y"), value.Null); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterTable(tb); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Table("orders"); !ok {
		t.Error("Table lookup failed")
	}
	if got := c.TableNames(); len(got) != 1 || got[0] != "orders" {
		t.Errorf("TableNames = %v", got)
	}
	// Clashes both ways.
	if err := c.RegisterTable(table.New("g", "x")); err == nil {
		t.Error("table name clashing with graph must fail")
	}
	if err := c.RegisterGraph(graph(t, "orders", 2)); err == nil {
		t.Error("graph name clashing with table must fail")
	}
	if err := c.RegisterTable(table.New("", "x")); err == nil {
		t.Error("nameless table must fail")
	}
}

func TestTableAsGraph(t *testing.T) {
	c := New()
	tb := table.New("orders", "custName", "prodCode")
	if err := tb.AddRow(value.Str("Ada"), value.Int(1001)); err != nil {
		t.Fatal(err)
	}
	if err := tb.AddRow(value.Str("Bob"), value.Null); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterTable(tb); err != nil {
		t.Fatal(err)
	}
	g, err := c.TableAsGraph("orders")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2 || g.NumEdges() != 0 {
		t.Fatalf("table graph = %v", g)
	}
	// Null cells mean absent properties.
	var nullProps int
	for _, id := range g.NodeIDs() {
		n, _ := g.Node(id)
		if n.Props.Get("prodCode").Len() == 0 {
			nullProps++
		}
	}
	if nullProps != 1 {
		t.Errorf("rows without prodCode = %d, want 1", nullProps)
	}
	// The conversion is cached: same identities on second call.
	g2, err := c.TableAsGraph("orders")
	if err != nil || g2 != g {
		t.Error("TableAsGraph must cache")
	}
	if _, err := c.TableAsGraph("missing"); err == nil {
		t.Error("unknown table must fail")
	}
	// Resolve falls through to tables.
	if rg, err := c.Resolve("orders"); err != nil || rg != g {
		t.Error("Resolve should find the table graph")
	}
}

func TestBindingTable(t *testing.T) {
	c := New()
	tb := table.New("t", "x", "y")
	if err := tb.AddRow(value.Int(1), value.Null); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterTable(tb); err != nil {
		t.Fatal(err)
	}
	rows, cols, err := c.BindingTable("t")
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 2 || len(rows) != 1 {
		t.Fatalf("binding table = %v, %v", cols, rows)
	}
	if _, bound := rows[0]["y"]; bound {
		t.Error("null cell must be unbound")
	}
	if _, _, err := c.BindingTable("missing"); err == nil {
		t.Error("unknown binding table must fail")
	}
}
