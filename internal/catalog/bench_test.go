package catalog

import (
	"fmt"
	"testing"

	"gcore/internal/table"
	"gcore/internal/value"
)

// BenchmarkBindingTable measures the FROM-clause conversion of a
// registered table into binding maps. The per-row maps are sized by
// the column count up front, so growth rehashes never happen.
func BenchmarkBindingTable(b *testing.B) {
	c := New()
	tbl := table.New("t", "a", "b", "c", "d")
	for i := 0; i < 1000; i++ {
		if err := tbl.AddRow(
			value.Int(int64(i)),
			value.Str(fmt.Sprintf("row-%d", i)),
			value.Float(float64(i)/3),
			value.Bool(i%2 == 0),
		); err != nil {
			b.Fatal(err)
		}
	}
	if err := c.RegisterTable(tbl); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, _, err := c.BindingTable("t")
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 1000 {
			b.Fatalf("got %d rows", len(rows))
		}
	}
}
