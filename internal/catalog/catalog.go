// Package catalog manages the named objects of one G-CORE engine:
// graphs (the gr(gid) function of §A.2), persistent graph views
// (GRAPH VIEW, §A.6), binding tables (§5), and the engine-wide
// identifier generator that keeps N, E and P disjoint across graphs.
package catalog

import (
	"fmt"
	"sort"
	"sync"

	"gcore/internal/ppg"
	"gcore/internal/table"
	"gcore/internal/value"
)

// Catalog is the name registry of an engine. Mutations (registrations,
// default changes) are not safe for concurrent use — engines serialise
// them behind the writer lock — but lookups are safe to run from many
// reader goroutines between mutations. The one lookup that populates
// state lazily, TableAsGraph, guards its cache with an internal mutex
// so concurrent readers over tables-as-graphs stay race-free.
type Catalog struct {
	graphs      map[string]*ppg.Graph
	tables      map[string]*table.Table
	tgMu        sync.Mutex            // guards tableGraphs
	tableGraphs map[string]*ppg.Graph // tables-as-graphs cache (§5)
	defaultName string
	ids         *ppg.IDGen

	// version counts catalog mutations (graph/table registrations and
	// default changes); consumers key compiled-statement caches on it
	// so any registration retires plans compiled before it.
	version uint64

	hook ChangeHook
}

// Change is one catalog mutation presented to the change hook before
// it is applied.
type Change struct {
	// Op is "register_graph", "register_table" or "set_default".
	Op    string
	Graph *ppg.Graph   // register_graph
	Table *table.Table // register_table
	Name  string       // set_default
}

// ChangeHook observes catalog mutations after validation and before
// application; returning an error rejects the mutation, leaving the
// catalog untouched. The durability layer logs catalog changes here —
// the catalog is the boundary because views register their
// materialised graphs directly against it, bypassing engine methods.
type ChangeHook func(ch Change) error

// SetChangeHook installs (or with nil removes) the catalog's change
// hook.
func (c *Catalog) SetChangeHook(h ChangeHook) { c.hook = h }

func (c *Catalog) fireHook(ch Change) error {
	if c.hook == nil {
		return nil
	}
	return c.hook(ch)
}

// New creates an empty catalog. Generated identifiers start at 1000
// so small hand-assigned identifiers in loaded graphs stay readable.
func New() *Catalog {
	return &Catalog{
		graphs:      map[string]*ppg.Graph{},
		tables:      map[string]*table.Table{},
		tableGraphs: map[string]*ppg.Graph{},
		ids:         ppg.NewIDGen(1000),
	}
}

// IDs returns the engine-wide identifier generator.
func (c *Catalog) IDs() *ppg.IDGen { return c.ids }

// Version counts the catalog's mutations; it increments on every
// graph or table registration and on default-graph changes.
func (c *Catalog) Version() uint64 { return c.version }

// RegisterGraph stores g under its name and reserves its identifiers.
// The first registered graph becomes the default graph.
func (c *Catalog) RegisterGraph(g *ppg.Graph) error {
	name := g.Name()
	if name == "" {
		return fmt.Errorf("catalog: graph needs a name")
	}
	if _, dup := c.tables[name]; dup {
		return fmt.Errorf("catalog: %q already names a table", name)
	}
	if err := c.fireHook(Change{Op: "register_graph", Graph: g}); err != nil {
		return err
	}
	c.graphs[name] = g
	c.version++
	for _, id := range g.NodeIDs() {
		c.ids.Reserve(uint64(id))
	}
	for _, id := range g.EdgeIDs() {
		c.ids.Reserve(uint64(id))
	}
	for _, id := range g.PathIDs() {
		c.ids.Reserve(uint64(id))
	}
	if c.defaultName == "" {
		c.defaultName = name
	}
	return nil
}

// RegisterTable stores a binding table under its name.
func (c *Catalog) RegisterTable(t *table.Table) error {
	if t.Name == "" {
		return fmt.Errorf("catalog: table needs a name")
	}
	if _, dup := c.graphs[t.Name]; dup {
		return fmt.Errorf("catalog: %q already names a graph", t.Name)
	}
	if err := c.fireHook(Change{Op: "register_table", Table: t}); err != nil {
		return err
	}
	c.tables[t.Name] = t
	c.version++
	c.tgMu.Lock()
	delete(c.tableGraphs, t.Name)
	c.tgMu.Unlock()
	return nil
}

// Graph resolves a graph name.
func (c *Catalog) Graph(name string) (*ppg.Graph, bool) {
	g, ok := c.graphs[name]
	return g, ok
}

// Table resolves a table name.
func (c *Catalog) Table(name string) (*table.Table, bool) {
	t, ok := c.tables[name]
	return t, ok
}

// SetDefault selects the graph MATCH uses when ON is omitted.
func (c *Catalog) SetDefault(name string) error {
	if _, ok := c.graphs[name]; !ok {
		return fmt.Errorf("catalog: unknown graph %q", name)
	}
	if err := c.fireHook(Change{Op: "set_default", Name: name}); err != nil {
		return err
	}
	c.defaultName = name
	c.version++
	return nil
}

// Default returns the default graph, or nil if none is set.
func (c *Catalog) Default() *ppg.Graph {
	if c.defaultName == "" {
		return nil
	}
	return c.graphs[c.defaultName]
}

// DefaultName returns the default graph's name ("" if unset).
func (c *Catalog) DefaultName() string { return c.defaultName }

// GraphNames lists registered graph names, sorted.
func (c *Catalog) GraphNames() []string {
	names := make([]string, 0, len(c.graphs))
	for n := range c.graphs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TableNames lists registered table names, sorted.
func (c *Catalog) TableNames() []string {
	names := make([]string, 0, len(c.tables))
	for n := range c.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TableAsGraph interprets a registered table as a graph of isolated
// nodes — one node per row, columns as properties (§5, lines 81–85).
// The conversion is cached so node identities are stable across
// queries of one engine.
func (c *Catalog) TableAsGraph(name string) (*ppg.Graph, error) {
	c.tgMu.Lock()
	defer c.tgMu.Unlock()
	if g, ok := c.tableGraphs[name]; ok {
		return g, nil
	}
	t, ok := c.tables[name]
	if !ok {
		return nil, fmt.Errorf("catalog: unknown table %q", name)
	}
	g := ppg.New(name)
	for _, row := range t.Rows {
		props := ppg.Properties{}
		for i, col := range t.Cols {
			if !row[i].IsNull() {
				props.Set(col, row[i])
			}
		}
		n := &ppg.Node{ID: c.ids.NextNode(), Props: props}
		if err := g.AddNode(n); err != nil {
			return nil, err
		}
	}
	c.tableGraphs[name] = g
	return g, nil
}

// Resolve finds a name as a graph first, then as a table-as-graph.
func (c *Catalog) Resolve(name string) (*ppg.Graph, error) {
	if g, ok := c.graphs[name]; ok {
		return g, nil
	}
	if _, ok := c.tables[name]; ok {
		return c.TableAsGraph(name)
	}
	return nil, fmt.Errorf("catalog: unknown graph %q (known graphs: %v)", name, c.GraphNames())
}

// BindingTable converts a registered table into variable bindings for
// the FROM clause (§5, lines 76–80): column names become variables.
func (c *Catalog) BindingTable(name string) ([]map[string]value.Value, []string, error) {
	t, ok := c.tables[name]
	if !ok {
		return nil, nil, fmt.Errorf("catalog: unknown binding table %q", name)
	}
	rows := make([]map[string]value.Value, 0, len(t.Rows))
	for _, row := range t.Rows {
		// Sized by the column count: every binding holds at most one
		// entry per column, and rows with no NULLs hold exactly that.
		b := make(map[string]value.Value, len(t.Cols))
		for i, col := range t.Cols {
			if !row[i].IsNull() {
				b[col] = row[i]
			}
		}
		rows = append(rows, b)
	}
	return rows, append([]string(nil), t.Cols...), nil
}
