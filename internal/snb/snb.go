// Package snb provides the datasets of the paper's evaluation: the
// toy Path Property Graph of Figure 2 (formalised in Example 2.2),
// the guided-tour instance social_graph of Figure 4 together with its
// companion company_graph, and a deterministic, scale-parameterised
// generator producing graphs with the (simplified) LDBC Social
// Network Benchmark schema of Figure 3.
//
// Substitution note (DESIGN.md): the real LDBC SNB data generator is
// an external Java system with licensed value distributions. The
// guided-tour queries depend only on the schema shape and the toy
// instance, which are reproduced here exactly; the scalable generator
// preserves the schema and the connectivity patterns (bidirectional
// knows edges, message reply trees, interest and location edges) so
// the complexity experiments exercise the same code paths.
package snb

import (
	"fmt"

	"gcore/internal/ppg"
	"gcore/internal/value"
)

// Identifiers of the Figure 2 / Example 2.2 graph, exactly as printed
// in the paper.
const (
	Fig2Wagner  ppg.NodeID = 101 // Tag {name: "Wagner"}
	Fig2Manager ppg.NodeID = 102 // Person, Manager
	Fig2Bob     ppg.NodeID = 103 // Person
	Fig2Carol   ppg.NodeID = 104 // Person
	Fig2Dave    ppg.NodeID = 105 // Person
	Fig2Houston ppg.NodeID = 106 // City {name: "Houston"}

	Fig2HasInterest ppg.EdgeID = 201 // 102 → 101
	Fig2Knows1      ppg.EdgeID = 202 // 103 → 102
	Fig2Knows2      ppg.EdgeID = 203 // 102 → 103
	Fig2Located1    ppg.EdgeID = 204 // 102 → 106
	Fig2Knows3      ppg.EdgeID = 205 // 103 → 105, {since: 1/12/2014}
	Fig2Located2    ppg.EdgeID = 206 // 105 → 106
	Fig2Knows4      ppg.EdgeID = 207 // 105 → 103

	Fig2ToWagner ppg.PathID = 301 // [105, 207, 103, 202, 102]
)

// Fig2Graph builds the small social network of Figure 2: a PPG with
// one stored path (301, label toWagner, trust 0.95). The paper fixes
// ρ(201) = (102, 101), ρ(207) = (105, 103), δ(301) = [105, 207, 103,
// 202, 102], λ and σ as in Example 2.2; the remaining edges are only
// depicted graphically and are reconstructed here consistently with
// the Appendix A.2 worked example (only 102 and 105 are located in
// Houston).
func Fig2Graph() *ppg.Graph {
	g := ppg.New("example_graph")
	must(g.AddNode(&ppg.Node{ID: Fig2Wagner, Labels: ppg.NewLabels("Tag"),
		Props: props("name", value.Str("Wagner"))}))
	must(g.AddNode(&ppg.Node{ID: Fig2Manager, Labels: ppg.NewLabels("Person", "Manager"),
		Props: props("name", value.Str("Alice"))}))
	must(g.AddNode(&ppg.Node{ID: Fig2Bob, Labels: ppg.NewLabels("Person"),
		Props: props("name", value.Str("Bob"))}))
	must(g.AddNode(&ppg.Node{ID: Fig2Carol, Labels: ppg.NewLabels("Person"),
		Props: props("name", value.Str("Carol"))}))
	must(g.AddNode(&ppg.Node{ID: Fig2Dave, Labels: ppg.NewLabels("Person"),
		Props: props("name", value.Str("Dave"))}))
	must(g.AddNode(&ppg.Node{ID: Fig2Houston, Labels: ppg.NewLabels("City"),
		Props: props("name", value.Str("Houston"))}))

	since, err := value.ParseDate("1/12/2014")
	if err != nil {
		panic(err)
	}
	must(g.AddEdge(&ppg.Edge{ID: Fig2HasInterest, Src: Fig2Manager, Dst: Fig2Wagner, Labels: ppg.NewLabels("hasInterest")}))
	must(g.AddEdge(&ppg.Edge{ID: Fig2Knows1, Src: Fig2Bob, Dst: Fig2Manager, Labels: ppg.NewLabels("knows")}))
	must(g.AddEdge(&ppg.Edge{ID: Fig2Knows2, Src: Fig2Manager, Dst: Fig2Bob, Labels: ppg.NewLabels("knows")}))
	must(g.AddEdge(&ppg.Edge{ID: Fig2Located1, Src: Fig2Manager, Dst: Fig2Houston, Labels: ppg.NewLabels("isLocatedIn")}))
	must(g.AddEdge(&ppg.Edge{ID: Fig2Knows3, Src: Fig2Bob, Dst: Fig2Dave, Labels: ppg.NewLabels("knows"),
		Props: props("since", since)}))
	must(g.AddEdge(&ppg.Edge{ID: Fig2Located2, Src: Fig2Dave, Dst: Fig2Houston, Labels: ppg.NewLabels("isLocatedIn")}))
	must(g.AddEdge(&ppg.Edge{ID: Fig2Knows4, Src: Fig2Dave, Dst: Fig2Bob, Labels: ppg.NewLabels("knows")}))

	must(g.AddPath(&ppg.Path{
		ID:     Fig2ToWagner,
		Nodes:  []ppg.NodeID{Fig2Dave, Fig2Bob, Fig2Manager},
		Edges:  []ppg.EdgeID{Fig2Knows4, Fig2Knows1},
		Labels: ppg.NewLabels("toWagner"),
		Props:  props("trust", value.Float(0.95)),
	}))
	return g
}

func props(kv ...any) ppg.Properties {
	p := ppg.Properties{}
	for i := 0; i < len(kv); i += 2 {
		p.Set(kv[i].(string), kv[i+1].(value.Value))
	}
	return p
}

func must(err error) {
	if err != nil {
		panic(fmt.Sprintf("snb: building dataset: %v", err))
	}
}
