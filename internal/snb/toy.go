package snb

import (
	"gcore/internal/ppg"
	"gcore/internal/value"
)

// The guided-tour instance of Figure 4 (social_graph) and the
// company_graph of the multi-graph examples. The persons, their
// employer properties and the message counts are chosen so that every
// binding table and result graph stated in §3 of the paper comes out
// exactly:
//
//   - Alice and John work at Acme, Celine at HAL, Frank at {CWI, MIT}
//     (multi-valued), Peter is unemployed (no employer property) —
//     the join/IN/unrolling examples of lines 5–19;
//   - knows pairs (each drawn bi-directionally, i.e. two edges):
//     John↔Peter, John↔Alice, Peter↔Celine, Peter↔Frank;
//   - everyone lives in Houston (the co-location predicate);
//   - Celine and Frank like Wagner; none of John's direct friends do;
//   - exchanged message pairs: John↔Peter 2, Peter↔Celine 3,
//     Peter↔Frank 1, John↔Alice 0 — giving the nr_messages of Fig. 5
//     and wKnows costs 1/3, 1/4, 1/2.
const (
	John    ppg.NodeID = 401
	Peter   ppg.NodeID = 402
	Celine  ppg.NodeID = 403
	Alice   ppg.NodeID = 404
	Frank   ppg.NodeID = 405
	Houston ppg.NodeID = 406
	Wagner  ppg.NodeID = 407

	// company_graph nodes.
	Acme ppg.NodeID = 501
	HAL  ppg.NodeID = 502
	CWI  ppg.NodeID = 503
	MIT  ppg.NodeID = 504
)

// Directed knows edges of the toy graph, exported for tests.
const (
	KnowsJohnPeter   ppg.EdgeID = 601
	KnowsPeterJohn   ppg.EdgeID = 602
	KnowsJohnAlice   ppg.EdgeID = 603
	KnowsAliceJohn   ppg.EdgeID = 604
	KnowsPeterCeline ppg.EdgeID = 605
	KnowsCelinePeter ppg.EdgeID = 606
	KnowsPeterFrank  ppg.EdgeID = 607
	KnowsFrankPeter  ppg.EdgeID = 608
)

// SocialGraph builds the Figure 4 toy instance.
func SocialGraph() *ppg.Graph {
	g := ppg.New("social_graph")
	person := func(id ppg.NodeID, first, last string, employer value.Value) {
		p := props("firstName", value.Str(first), "lastName", value.Str(last))
		if !employer.IsNull() {
			p.Set("employer", employer)
		}
		must(g.AddNode(&ppg.Node{ID: id, Labels: ppg.NewLabels("Person"), Props: p}))
	}
	person(John, "John", "Doe", value.Str("Acme"))
	person(Peter, "Peter", "Smith", value.Null) // unemployed: no employer property
	person(Celine, "Celine", "Mayer", value.Str("HAL"))
	person(Alice, "Alice", "Hacker", value.Str("Acme"))
	person(Frank, "Frank", "Gold", value.Set(value.Str("CWI"), value.Str("MIT")))

	must(g.AddNode(&ppg.Node{ID: Houston, Labels: ppg.NewLabels("City"),
		Props: props("name", value.Str("Houston"))}))
	must(g.AddNode(&ppg.Node{ID: Wagner, Labels: ppg.NewLabels("Tag"),
		Props: props("name", value.Str("Wagner"))}))

	eid := ppg.EdgeID(620)
	edge := func(src, dst ppg.NodeID, label string) {
		must(g.AddEdge(&ppg.Edge{ID: eid, Src: src, Dst: dst, Labels: ppg.NewLabels(label)}))
		eid++
	}
	knows := func(id ppg.EdgeID, src, dst ppg.NodeID) {
		must(g.AddEdge(&ppg.Edge{ID: id, Src: src, Dst: dst, Labels: ppg.NewLabels("knows")}))
	}
	knows(KnowsJohnPeter, John, Peter)
	knows(KnowsPeterJohn, Peter, John)
	knows(KnowsJohnAlice, John, Alice)
	knows(KnowsAliceJohn, Alice, John)
	knows(KnowsPeterCeline, Peter, Celine)
	knows(KnowsCelinePeter, Celine, Peter)
	knows(KnowsPeterFrank, Peter, Frank)
	knows(KnowsFrankPeter, Frank, Peter)

	for _, p := range []ppg.NodeID{John, Peter, Celine, Alice, Frank} {
		edge(p, Houston, "isLocatedIn")
	}
	edge(Celine, Wagner, "hasInterest")
	edge(Frank, Wagner, "hasInterest")

	// Messages: per exchanged pair one Post and one Comment replying
	// to it, with has_creator edges to the two correspondents.
	nid := ppg.NodeID(700)
	addMessagePair := func(a, b ppg.NodeID) {
		post := nid
		comment := nid + 1
		nid += 2
		must(g.AddNode(&ppg.Node{ID: post, Labels: ppg.NewLabels("Post")}))
		must(g.AddNode(&ppg.Node{ID: comment, Labels: ppg.NewLabels("Comment")}))
		edge(post, a, "has_creator")
		edge(comment, b, "has_creator")
		edge(comment, post, "reply_of")
	}
	exchange := func(a, b ppg.NodeID, pairs int) {
		for i := 0; i < pairs; i++ {
			if i%2 == 0 {
				addMessagePair(a, b)
			} else {
				addMessagePair(b, a)
			}
		}
	}
	exchange(John, Peter, 2)
	exchange(Peter, Celine, 3)
	exchange(Peter, Frank, 1)
	return g
}

// CompanyGraph builds the unconnected company nodes of the data
// integration example (lines 5–22): Acme, HAL, CWI and MIT.
func CompanyGraph() *ppg.Graph {
	g := ppg.New("company_graph")
	for id, name := range map[ppg.NodeID]string{Acme: "Acme", HAL: "HAL", CWI: "CWI", MIT: "MIT"} {
		must(g.AddNode(&ppg.Node{ID: id, Labels: ppg.NewLabels("Company"),
			Props: props("name", value.Str(name))}))
	}
	return g
}

// OrdersTable is the binding-table input of the §5 examples (lines
// 76–85): customer names and product codes.
func OrdersRows() (cols []string, rows [][]value.Value) {
	cols = []string{"custName", "prodCode"}
	rows = [][]value.Value{
		{value.Str("Ada"), value.Int(1001)},
		{value.Str("Ada"), value.Int(1002)},
		{value.Str("Bob"), value.Int(1001)},
		{value.Str("Cyd"), value.Int(1003)},
		{value.Str("Bob"), value.Int(1001)}, // repeat purchase: same edge group
	}
	return cols, rows
}
