package snb

import (
	"fmt"

	"gcore/internal/ppg"
)

// Schema conformance for the simplified SNB schema of Figure 3: each
// edge label has fixed endpoint label sets. CheckSchema validates a
// graph against it, which is how the FIG3 repro experiment asserts
// that the generator emits exactly the paper's schema.

// edgeRule describes the legal endpoints of one edge label.
type edgeRule struct {
	src []string
	dst []string
}

// SchemaRules is the Figure 3 edge inventory.
var SchemaRules = map[string]edgeRule{
	"knows":        {src: []string{"Person"}, dst: []string{"Person"}},
	"isLocatedIn":  {src: []string{"Person", "Company"}, dst: []string{"City"}},
	"hasInterest":  {src: []string{"Person"}, dst: []string{"Tag"}},
	"has_creator":  {src: []string{"Post", "Comment"}, dst: []string{"Person"}},
	"reply_of":     {src: []string{"Comment"}, dst: []string{"Post", "Comment"}},
	"worksAt":      {src: []string{"Person"}, dst: []string{"Company"}},
	"wagnerFriend": {src: []string{"Person"}, dst: []string{"Person"}},
}

// NodeLabels is the Figure 3 node inventory.
var NodeLabels = []string{"Person", "City", "Tag", "Company", "Post", "Comment", "Manager"}

// CheckSchema verifies that every edge of g conforms to the Figure 3
// schema and that every node carries at least one known label.
func CheckSchema(g *ppg.Graph) error {
	known := map[string]bool{}
	for _, l := range NodeLabels {
		known[l] = true
	}
	for _, id := range g.NodeIDs() {
		n, _ := g.Node(id)
		if len(n.Labels) == 0 {
			return fmt.Errorf("snb: node #%d has no label", id)
		}
		ok := false
		for _, l := range n.Labels {
			if known[l] {
				ok = true
			}
		}
		if !ok {
			return fmt.Errorf("snb: node #%d has no schema label (labels: %v)", id, n.Labels)
		}
	}
	for _, id := range g.EdgeIDs() {
		e, _ := g.Edge(id)
		if len(e.Labels) != 1 {
			return fmt.Errorf("snb: edge #%d must have exactly one label, has %v", id, e.Labels)
		}
		rule, ok := SchemaRules[e.Labels[0]]
		if !ok {
			return fmt.Errorf("snb: edge #%d has unknown label %q", id, e.Labels[0])
		}
		src, _ := g.Node(e.Src)
		dst, _ := g.Node(e.Dst)
		if !hasAny(src.Labels, rule.src) {
			return fmt.Errorf("snb: edge #%d (%s) starts at %v, want one of %v", id, e.Labels[0], src.Labels, rule.src)
		}
		if !hasAny(dst.Labels, rule.dst) {
			return fmt.Errorf("snb: edge #%d (%s) ends at %v, want one of %v", id, e.Labels[0], dst.Labels, rule.dst)
		}
	}
	return nil
}

func hasAny(ls ppg.Labels, names []string) bool {
	for _, n := range names {
		if ls.Has(n) {
			return true
		}
	}
	return false
}
