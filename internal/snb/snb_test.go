package snb

import (
	"testing"

	"gcore/internal/ppg"
	"gcore/internal/value"
)

func TestFig2GraphMatchesFormalization(t *testing.T) {
	g := Fig2Graph()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Example 2.2: |N| = 6, |E| = 7, |P| = 1.
	if g.NumNodes() != 6 || g.NumEdges() != 7 || g.NumPaths() != 1 {
		t.Fatalf("cardinalities %d/%d/%d", g.NumNodes(), g.NumEdges(), g.NumPaths())
	}
	// ρ(201) = (102, 101), ρ(207) = (105, 103).
	e201, _ := g.Edge(201)
	if e201.Src != 102 || e201.Dst != 101 {
		t.Errorf("ρ(201) = (%d,%d)", e201.Src, e201.Dst)
	}
	e207, _ := g.Edge(207)
	if e207.Src != 105 || e207.Dst != 103 {
		t.Errorf("ρ(207) = (%d,%d)", e207.Src, e207.Dst)
	}
	// λ assignments from the example.
	n101, _ := g.Node(101)
	if !n101.Labels.Has("Tag") {
		t.Error("λ(101) must contain Tag")
	}
	n102, _ := g.Node(102)
	if !n102.Labels.Has("Person") || !n102.Labels.Has("Manager") {
		t.Error("λ(102) must be {Person, Manager}")
	}
	// σ assignments.
	if !value.Equal(n101.Props.Get("name").Scalarize(), value.Str("Wagner")) {
		t.Error("σ(101, name) must be Wagner")
	}
	e205, _ := g.Edge(205)
	since, _ := value.ParseDate("1/12/2014")
	if !value.Equal(e205.Props.Get("since").Scalarize(), since) {
		t.Errorf("σ(205, since) = %v", e205.Props.Get("since"))
	}
	// δ(301) = [105, 207, 103, 202, 102]; nodes(301) and edges(301).
	p, _ := g.Path(301)
	wantN := []ppg.NodeID{105, 103, 102}
	wantE := []ppg.EdgeID{207, 202}
	for i := range wantN {
		if p.Nodes[i] != wantN[i] {
			t.Fatalf("nodes(301) = %v", p.Nodes)
		}
	}
	for i := range wantE {
		if p.Edges[i] != wantE[i] {
			t.Fatalf("edges(301) = %v", p.Edges)
		}
	}
	if !p.Labels.Has("toWagner") {
		t.Error("λ(301) must contain toWagner")
	}
	if !value.Equal(p.Props.Get("trust").Scalarize(), value.Float(0.95)) {
		t.Errorf("σ(301, trust) = %v", p.Props.Get("trust"))
	}
}

func TestSocialGraphShape(t *testing.T) {
	g := SocialGraph()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := CheckSchema(g); err != nil {
		t.Fatal(err)
	}
	// Employer properties drive the §3 join examples.
	check := func(id ppg.NodeID, want value.Value) {
		t.Helper()
		n, _ := g.Node(id)
		got := n.Props.Get("employer")
		if want.IsNull() {
			if got.Len() != 0 {
				t.Errorf("node #%d should have no employer, has %v", id, got)
			}
			return
		}
		if !value.Equal(got.Scalarize(), want.Scalarize()) {
			t.Errorf("employer(#%d) = %v, want %v", id, got, want)
		}
	}
	check(John, value.Str("Acme"))
	check(Alice, value.Str("Acme"))
	check(Celine, value.Str("HAL"))
	check(Peter, value.Null)
	check(Frank, value.Set(value.Str("CWI"), value.Str("MIT")))

	// 8 directed knows edges (4 bi-directional pairs).
	knows := 0
	for _, id := range g.EdgeIDs() {
		e, _ := g.Edge(id)
		if e.Labels.Has("knows") {
			knows++
		}
	}
	if knows != 8 {
		t.Errorf("knows edges = %d, want 8", knows)
	}
	// Message pairs: 2+3+1 pairs = 6 posts + 6 comments.
	posts, comments := 0, 0
	for _, id := range g.NodeIDs() {
		n, _ := g.Node(id)
		if n.Labels.Has("Post") {
			posts++
		}
		if n.Labels.Has("Comment") {
			comments++
		}
	}
	if posts != 6 || comments != 6 {
		t.Errorf("posts/comments = %d/%d, want 6/6", posts, comments)
	}
}

func TestCompanyGraph(t *testing.T) {
	g := CompanyGraph()
	if g.NumNodes() != 4 || g.NumEdges() != 0 {
		t.Fatalf("company graph = %v", g)
	}
	names := map[string]bool{}
	for _, id := range g.NodeIDs() {
		n, _ := g.Node(id)
		s, _ := n.Props.Get("name").Scalarize().AsString()
		names[s] = true
		if !n.Labels.Has("Company") {
			t.Error("company node missing label")
		}
	}
	for _, want := range []string{"Acme", "HAL", "CWI", "MIT"} {
		if !names[want] {
			t.Errorf("company %s missing", want)
		}
	}
}

func TestGeneratorDeterministicAndConformant(t *testing.T) {
	gen1 := ppg.NewIDGen(1)
	ds1 := Generate(Config{Persons: 60, Seed: 7}, gen1)
	if err := ds1.Social.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := CheckSchema(ds1.Social); err != nil {
		t.Fatal(err)
	}
	if len(ds1.Persons) != 60 {
		t.Fatalf("persons = %d", len(ds1.Persons))
	}
	// Determinism: same seed, same graph.
	gen2 := ppg.NewIDGen(1)
	ds2 := Generate(Config{Persons: 60, Seed: 7}, gen2)
	if ds1.Social.NumNodes() != ds2.Social.NumNodes() || ds1.Social.NumEdges() != ds2.Social.NumEdges() {
		t.Error("generator is not deterministic")
	}
	j1, err := ds1.Social.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := ds2.Social.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(j1) != string(j2) {
		t.Error("generator output differs across runs with the same seed")
	}
	// Different seed, different layout.
	gen3 := ppg.NewIDGen(1)
	ds3 := Generate(Config{Persons: 60, Seed: 8}, gen3)
	j3, err := ds3.Social.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(j1) == string(j3) {
		t.Error("different seeds should differ")
	}
	// Companion graph holds companies only.
	if ds1.Companies.NumNodes() == 0 {
		t.Error("no companies generated")
	}
}

func TestGeneratorScalesConnectivity(t *testing.T) {
	gen := ppg.NewIDGen(1)
	ds := Generate(Config{Persons: 30, AvgKnows: 6, Seed: 3}, gen)
	knows := 0
	for _, id := range ds.Social.EdgeIDs() {
		e, _ := ds.Social.Edge(id)
		if e.Labels.Has("knows") {
			knows++
		}
	}
	// Ring (30 pairs) + chords ((6-2)*30/2 = 60 attempts, some dup):
	// at least the ring must exist.
	if knows < 60 {
		t.Errorf("knows edges = %d, want >= 60 (ring)", knows)
	}
}

func TestCheckSchemaRejectsViolations(t *testing.T) {
	g := ppg.New("bad")
	if err := g.AddNode(&ppg.Node{ID: 1, Labels: ppg.NewLabels("Person")}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddNode(&ppg.Node{ID: 2, Labels: ppg.NewLabels("Tag")}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(&ppg.Edge{ID: 3, Src: 2, Dst: 1, Labels: ppg.NewLabels("knows")}); err != nil {
		t.Fatal(err)
	}
	if err := CheckSchema(g); err == nil {
		t.Error("Tag -knows-> Person must violate the schema")
	}
	// Unlabelled node.
	g2 := ppg.New("bad2")
	if err := g2.AddNode(&ppg.Node{ID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := CheckSchema(g2); err == nil {
		t.Error("unlabelled node must violate the schema")
	}
	// Unknown edge label.
	g3 := ppg.New("bad3")
	if err := g3.AddNode(&ppg.Node{ID: 1, Labels: ppg.NewLabels("Person")}); err != nil {
		t.Fatal(err)
	}
	if err := g3.AddEdge(&ppg.Edge{ID: 2, Src: 1, Dst: 1, Labels: ppg.NewLabels("likes")}); err != nil {
		t.Fatal(err)
	}
	if err := CheckSchema(g3); err == nil {
		t.Error("unknown edge label must violate the schema")
	}
}

func TestOrdersRows(t *testing.T) {
	cols, rows := OrdersRows()
	if len(cols) != 2 || len(rows) != 5 {
		t.Fatalf("orders = %v, %d rows", cols, len(rows))
	}
}
