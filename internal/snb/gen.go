package snb

import (
	"fmt"
	"math/rand"

	"gcore/internal/ppg"
	"gcore/internal/value"
)

// Config parameterises the synthetic SNB-schema generator. All sizes
// derive from Persons unless set explicitly; Seed fixes the layout.
type Config struct {
	Persons        int
	Cities         int // default Persons/20 + 1
	Tags           int // default Persons/10 + 1
	Companies      int // default Persons/25 + 2
	AvgKnows       int // average undirected knows degree, default 4
	PostsPerPerson int // default 2
	RepliesPerPost int // default 1
	Seed           int64
}

func (c Config) withDefaults() Config {
	if c.Cities == 0 {
		c.Cities = c.Persons/20 + 1
	}
	if c.Tags == 0 {
		c.Tags = c.Persons/10 + 1
	}
	if c.Companies == 0 {
		c.Companies = c.Persons/25 + 2
	}
	if c.AvgKnows == 0 {
		c.AvgKnows = 4
	}
	if c.PostsPerPerson == 0 {
		c.PostsPerPerson = 2
	}
	if c.RepliesPerPost == 0 {
		c.RepliesPerPost = 1
	}
	return c
}

// Dataset is a generated social graph plus its companion company
// graph and convenient id slices for benchmarks.
type Dataset struct {
	Social    *ppg.Graph
	Companies *ppg.Graph
	Persons   []ppg.NodeID
	Cities    []ppg.NodeID
	Tags      []ppg.NodeID
}

var firstNames = []string{"John", "Peter", "Celine", "Alice", "Frank", "Mia", "Noah", "Lena", "Omar", "Ida", "Hugo", "Sara", "Ivan", "Tess", "Paul", "Vera"}
var lastNames = []string{"Doe", "Smith", "Mayer", "Hacker", "Gold", "Stone", "Reyes", "Kimura", "Novak", "Okafor", "Lindt", "Berg"}

// Generate builds a deterministic dataset at the given configuration.
// Identifiers are allocated from gen so the dataset can be registered
// alongside other graphs of the same engine.
func Generate(cfg Config, gen *ppg.IDGen) *Dataset {
	cfg = cfg.withDefaults()
	r := rand.New(rand.NewSource(cfg.Seed))
	g := ppg.New(fmt.Sprintf("snb_%d", cfg.Persons))
	ds := &Dataset{Social: g}

	// Companies (in their own graph, as in the data-integration tour).
	cg := ppg.New(fmt.Sprintf("snb_%d_companies", cfg.Persons))
	ds.Companies = cg
	companyNames := make([]string, cfg.Companies)
	for i := 0; i < cfg.Companies; i++ {
		companyNames[i] = fmt.Sprintf("Company%d", i)
		must(cg.AddNode(&ppg.Node{ID: gen.NextNode(), Labels: ppg.NewLabels("Company"),
			Props: props("name", value.Str(companyNames[i]))}))
	}

	for i := 0; i < cfg.Cities; i++ {
		id := gen.NextNode()
		ds.Cities = append(ds.Cities, id)
		must(g.AddNode(&ppg.Node{ID: id, Labels: ppg.NewLabels("City"),
			Props: props("name", value.Str(fmt.Sprintf("City%d", i)))}))
	}
	for i := 0; i < cfg.Tags; i++ {
		id := gen.NextNode()
		ds.Tags = append(ds.Tags, id)
		must(g.AddNode(&ppg.Node{ID: id, Labels: ppg.NewLabels("Tag"),
			Props: props("name", value.Str(fmt.Sprintf("Tag%d", i)))}))
	}

	for i := 0; i < cfg.Persons; i++ {
		id := gen.NextNode()
		ds.Persons = append(ds.Persons, id)
		p := props(
			"firstName", value.Str(firstNames[r.Intn(len(firstNames))]),
			"lastName", value.Str(lastNames[r.Intn(len(lastNames))]),
		)
		if i == 0 {
			// A deterministic anchor person for single-source sweeps.
			p.Set("firstName", value.Str("John"))
			p.Set("lastName", value.Str("Doe"))
			p.Set("anchor", value.True)
		}
		// ~10% unemployed, ~10% with two employers (multi-valued).
		switch roll := r.Intn(10); {
		case roll == 0:
			// no employer property
		case roll == 1:
			a := companyNames[r.Intn(len(companyNames))]
			b := companyNames[r.Intn(len(companyNames))]
			p.Set("employer", value.Set(value.Str(a), value.Str(b)))
		default:
			p.Set("employer", value.Str(companyNames[r.Intn(len(companyNames))]))
		}
		must(g.AddNode(&ppg.Node{ID: id, Labels: ppg.NewLabels("Person"), Props: p}))
	}

	edge := func(src, dst ppg.NodeID, label string, p ppg.Properties) {
		must(g.AddEdge(&ppg.Edge{ID: gen.NextEdge(), Src: src, Dst: dst, Labels: ppg.NewLabels(label), Props: p}))
	}

	// Location and interests.
	for _, pid := range ds.Persons {
		edge(pid, ds.Cities[r.Intn(len(ds.Cities))], "isLocatedIn", nil)
		for k := 0; k < 1+r.Intn(2); k++ {
			edge(pid, ds.Tags[r.Intn(len(ds.Tags))], "hasInterest", nil)
		}
	}

	// knows: a ring for connectivity plus random chords, each pair
	// drawn bi-directionally as in Fig. 4.
	knowsPair := func(a, b ppg.NodeID) {
		edge(a, b, "knows", nil)
		edge(b, a, "knows", nil)
	}
	seen := map[[2]ppg.NodeID]bool{}
	addPair := func(a, b ppg.NodeID) {
		if a == b {
			return
		}
		if a > b {
			a, b = b, a
		}
		if seen[[2]ppg.NodeID{a, b}] {
			return
		}
		seen[[2]ppg.NodeID{a, b}] = true
		knowsPair(a, b)
	}
	n := len(ds.Persons)
	for i := 0; i < n; i++ {
		addPair(ds.Persons[i], ds.Persons[(i+1)%n])
	}
	extra := n * (cfg.AvgKnows - 2) / 2
	for i := 0; i < extra; i++ {
		addPair(ds.Persons[r.Intn(n)], ds.Persons[r.Intn(n)])
	}

	// Messages: posts by persons, replies by their acquaintances.
	var posts []struct {
		id      ppg.NodeID
		creator int
	}
	for pi, pid := range ds.Persons {
		for k := 0; k < cfg.PostsPerPerson; k++ {
			post := gen.NextNode()
			must(g.AddNode(&ppg.Node{ID: post, Labels: ppg.NewLabels("Post")}))
			edge(post, pid, "has_creator", nil)
			posts = append(posts, struct {
				id      ppg.NodeID
				creator int
			}{post, pi})
		}
	}
	for _, post := range posts {
		for k := 0; k < cfg.RepliesPerPost; k++ {
			replier := ds.Persons[(post.creator+1+r.Intn(3))%n]
			comment := gen.NextNode()
			must(g.AddNode(&ppg.Node{ID: comment, Labels: ppg.NewLabels("Comment")}))
			edge(comment, replier, "has_creator", nil)
			edge(comment, post.id, "reply_of", nil)
		}
	}
	return ds
}
