package faultinject

import (
	"errors"
	"strings"
	"sync"
	"testing"
)

func TestDisarmedIsNoop(t *testing.T) {
	Disarm()
	if err := Check(SiteCoreScan); err != nil {
		t.Fatalf("disarmed probe returned %v", err)
	}
	if Hits(SiteCoreScan) != 0 {
		t.Fatal("disarmed probe counted a hit")
	}
}

func TestErrorAction(t *testing.T) {
	Arm()
	defer Disarm()
	want := errors.New("injected")
	Set(SiteCoreScan, Action{Err: want})
	if err := Check(SiteCoreScan); !errors.Is(err, want) {
		t.Fatalf("got %v, want injected error", err)
	}
	if Hits(SiteCoreScan) != 1 {
		t.Fatalf("hits = %d, want 1", Hits(SiteCoreScan))
	}
	// Other sites just count.
	if err := Check(SiteCoreExtend); err != nil {
		t.Fatalf("unset site returned %v", err)
	}
	if Hits(SiteCoreExtend) != 1 {
		t.Fatalf("unset site hits = %d, want 1", Hits(SiteCoreExtend))
	}
}

func TestPanicAction(t *testing.T) {
	Arm()
	defer Disarm()
	Set(SiteParChunk, Action{Panic: true})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("probe did not panic")
		}
		if !strings.Contains(r.(string), SiteParChunk) {
			t.Fatalf("panic value %v does not name the site", r)
		}
	}()
	_ = Check(SiteParChunk)
}

func TestHookAction(t *testing.T) {
	Arm()
	defer Disarm()
	ran := false
	Set(SiteRPQShortest, Action{Fn: func() { ran = true }})
	if err := Check(SiteRPQShortest); err != nil {
		t.Fatalf("hook-only probe returned %v", err)
	}
	if !ran {
		t.Fatal("hook did not run")
	}
}

func TestConcurrentProbes(t *testing.T) {
	Arm()
	defer Disarm()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				_ = Check(SiteCoreFilter)
			}
		}()
	}
	wg.Wait()
	if got := Hits(SiteCoreFilter); got != 8000 {
		t.Fatalf("hits = %d, want 8000", got)
	}
}

func TestAllSitesDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range AllSites() {
		if seen[s] {
			t.Fatalf("duplicate site %q", s)
		}
		seen[s] = true
	}
	if len(seen) < 13 {
		t.Fatalf("expected at least 13 sites, got %d", len(seen))
	}
}
