// Package faultinject is the engine's fault-injection harness: a
// registry of named probe points threaded through every evaluation
// checkpoint (the governor calls Check at each one). In production
// the harness is disarmed and a probe costs a single atomic load;
// tests arm it to inject a panic, an error, or an arbitrary hook
// (typically a context cancel) at an exact point of the evaluation
// pipeline, and to assert afterwards that the point was actually
// reached. The robustness suite at the repository root drives every
// site below with both a panic and a cancellation and checks that the
// engine surfaces a typed error, leaks no goroutines and leaves
// registered graphs untouched.
package faultinject

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// The probe sites. Each names one evaluation checkpoint; the site is
// passed to gov.Governor.Checkpoint, which forwards it here when the
// harness is armed. Sites come in pairs where the engine has a legacy
// and a CSR kernel for the same operation — the fault tests toggle
// the ablation knobs to reach both.
const (
	// SiteEvalStart fires once at the top of every statement
	// evaluation, before any clause runs.
	SiteEvalStart = "core.eval"
	// SiteCoreScan fires in the node-scan candidate loops (legacy and
	// CSR forms share it; the DisableCSR knob selects which runs).
	SiteCoreScan = "core.scan"
	// SiteCoreExtend fires per row of the edge-expansion loops
	// (legacy and CSR forms).
	SiteCoreExtend = "core.extend"
	// SiteCoreFilter fires in the WHERE loops: pushed-down conjunct
	// chunks and the residual filter.
	SiteCoreFilter = "core.filter"
	// SiteCorePath fires per row of the path-pattern extension loop
	// (computed and stored paths).
	SiteCorePath = "core.path"
	// SiteCoreConstruct fires per constructed object group in
	// CONSTRUCT evaluation.
	SiteCoreConstruct = "core.construct"
	// SiteParChunk fires in the worker-pool loops before each chunk
	// (MapChunks) or index (ForEachIdx) is claimed.
	SiteParChunk = "par.chunk"
	// SiteRPQShortest fires in the legacy k-shortest heap loop.
	SiteRPQShortest = "rpq.shortest"
	// SiteRPQReach fires in the legacy reachability frontier loop.
	SiteRPQReach = "rpq.reach"
	// SiteRPQAll fires in the legacy ALL-paths sweep loop.
	SiteRPQAll = "rpq.all"
	// SiteRPQCSRShortest fires in the CSR k-shortest heap loop.
	SiteRPQCSRShortest = "rpq.csr.shortest"
	// SiteRPQCSRReach fires in the CSR reachability frontier loop.
	SiteRPQCSRReach = "rpq.csr.reach"
	// SiteRPQCSRAll fires in the CSR ALL-paths sweep loop.
	SiteRPQCSRAll = "rpq.csr.all"
)

// The I/O probe sites of the durability subsystem (internal/wal and
// the engine's checkpoint writer). These are not evaluation
// checkpoints — queries on a non-durable engine never reach them — so
// they live in IOSites, not AllSites: the crash-torture suite drives
// each of them against an open durable engine and asserts that the
// failed operation is rejected cleanly and that recovery restores the
// committed prefix.
const (
	// SiteWALAppend fires at the top of every WAL record append; an
	// injected error fails the append before any byte is written.
	SiteWALAppend = "wal.append"
	// SiteWALShortWrite fires before the record write; an injected
	// error makes the WAL write only half the record and fail — a torn
	// write that recovery must truncate.
	SiteWALShortWrite = "wal.append.short"
	// SiteWALSync fires in every segment fsync; an injected error
	// simulates a failed fsync (the appended record is rolled back).
	SiteWALSync = "wal.sync"
	// SiteWALRoll fires before a segment roll.
	SiteWALRoll = "wal.roll"
	// SiteWALCheckpointWrite fires while the engine stages checkpoint
	// state files; an injected error abandons the staging directory.
	SiteWALCheckpointWrite = "wal.checkpoint.write"
	// SiteWALCheckpointRename fires before the checkpoint directory is
	// renamed into place; an injected error leaves the previous
	// checkpoint current.
	SiteWALCheckpointRename = "wal.checkpoint.rename"
)

// AllSites lists every declared probe site. The fault tests iterate
// it so a new checkpoint cannot be added without being covered.
func AllSites() []string {
	return []string{
		SiteEvalStart,
		SiteCoreScan,
		SiteCoreExtend,
		SiteCoreFilter,
		SiteCorePath,
		SiteCoreConstruct,
		SiteParChunk,
		SiteRPQShortest,
		SiteRPQReach,
		SiteRPQAll,
		SiteRPQCSRShortest,
		SiteRPQCSRReach,
		SiteRPQCSRAll,
	}
}

// IOSites lists the durability I/O probe sites. They are kept apart
// from AllSites because they are reached by durable-engine mutations,
// not by query evaluation; the crash-torture suite iterates this list
// so a new I/O fault point cannot be added without coverage.
func IOSites() []string {
	return []string{
		SiteWALAppend,
		SiteWALShortWrite,
		SiteWALSync,
		SiteWALRoll,
		SiteWALCheckpointWrite,
		SiteWALCheckpointRename,
	}
}

// Action is what an armed probe does when evaluation reaches it. The
// hook (if any) runs first, then Panic, then Err; a zero Action just
// counts the hit.
type Action struct {
	// Fn is a side hook run at the probe — typically the cancel
	// function of the context under test, so cancellation lands at an
	// exact evaluation point.
	Fn func()
	// Panic makes the probe panic, exercising the containment path.
	Panic bool
	// Err is returned from the checkpoint as if evaluation failed.
	Err error
}

var (
	armed   atomic.Bool
	mu      sync.Mutex
	actions map[string]Action
	hits    map[string]int
)

// Arm enables the harness. Until armed, Check is a no-op costing one
// atomic load — the production configuration.
func Arm() {
	mu.Lock()
	defer mu.Unlock()
	if actions == nil {
		actions = map[string]Action{}
		hits = map[string]int{}
	}
	armed.Store(true)
}

// Disarm disables the harness and clears all actions and counters.
func Disarm() {
	mu.Lock()
	defer mu.Unlock()
	armed.Store(false)
	actions = nil
	hits = nil
}

// Set arms an action at one site (the harness must be Armed for it to
// fire). Setting a zero Action turns the site into a pure hit
// counter.
func Set(site string, a Action) {
	mu.Lock()
	defer mu.Unlock()
	if actions == nil {
		actions = map[string]Action{}
		hits = map[string]int{}
	}
	actions[site] = a
}

// Hits reports how many times a site has been reached since Arm.
func Hits(site string) int {
	mu.Lock()
	defer mu.Unlock()
	return hits[site]
}

// Check is the probe. Disarmed it returns nil immediately; armed it
// counts the hit and performs the site's action. It is safe to call
// from concurrent worker goroutines.
func Check(site string) error {
	if !armed.Load() {
		return nil
	}
	mu.Lock()
	if hits == nil { // disarmed between the atomic load and the lock
		mu.Unlock()
		return nil
	}
	hits[site]++
	a := actions[site]
	mu.Unlock()
	if a.Fn != nil {
		a.Fn()
	}
	if a.Panic {
		panic(fmt.Sprintf("faultinject: injected panic at %s", site))
	}
	return a.Err
}
