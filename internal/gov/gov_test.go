package gov

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"gcore/internal/faultinject"
)

func contains(s, sub string) bool { return strings.Contains(s, sub) }

func TestCheckpointLiveContext(t *testing.T) {
	g := New(context.Background(), Limits{})
	for i := 0; i < 10; i++ {
		if err := g.Checkpoint("test.site"); err != nil {
			t.Fatalf("live context checkpoint failed: %v", err)
		}
	}
}

func TestCheckpointCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g := New(ctx, Limits{})
	cancel()
	err := g.Checkpoint("test.site")
	qe, ok := AsQueryError(err)
	if !ok || qe.Kind != KindCanceled {
		t.Fatalf("want KindCanceled, got %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cause not context.Canceled: %v", err)
	}
}

func TestCheckpointTimeout(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-ctx.Done()
	g := New(ctx, Limits{Timeout: time.Nanosecond})
	err := g.Checkpoint("test.site")
	qe, ok := AsQueryError(err)
	if !ok || qe.Kind != KindTimeout {
		t.Fatalf("want KindTimeout, got %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cause not DeadlineExceeded: %v", err)
	}
}

func TestNilGovernorIsUngoverned(t *testing.T) {
	var g *Governor
	if err := g.Checkpoint("test.site"); err != nil {
		t.Fatalf("nil governor checkpoint: %v", err)
	}
	if err := g.GrowFrontier(1 << 30); err != nil {
		t.Fatalf("nil governor frontier: %v", err)
	}
	if err := g.AddResults(1 << 30); err != nil {
		t.Fatalf("nil governor results: %v", err)
	}
	if g.Context() == nil {
		t.Fatal("nil governor context")
	}
}

func TestFrontierBudget(t *testing.T) {
	g := New(context.Background(), Limits{MaxPathFrontier: 100})
	if err := g.GrowFrontier(100); err != nil {
		t.Fatalf("within budget: %v", err)
	}
	err := g.GrowFrontier(1)
	qe, ok := AsQueryError(err)
	if !ok || qe.Kind != KindBudget {
		t.Fatalf("want KindBudget, got %v", err)
	}
	for _, want := range []string{"frontier limit", "limit 100", "explored 101", "MaxPathFrontier"} {
		if !contains(qe.Msg, want) {
			t.Errorf("budget message %q missing %q", qe.Msg, want)
		}
	}
}

func TestResultsBudget(t *testing.T) {
	g := New(context.Background(), Limits{MaxResultElements: 5})
	if err := g.AddResults(5); err != nil {
		t.Fatalf("within budget: %v", err)
	}
	err := g.AddResults(2)
	qe, ok := AsQueryError(err)
	if !ok || qe.Kind != KindBudget {
		t.Fatalf("want KindBudget, got %v", err)
	}
	if !contains(qe.Msg, "result limit") || !contains(qe.Msg, "built 7") {
		t.Errorf("budget message %q lacks limit/progress", qe.Msg)
	}
}

func TestBindingsError(t *testing.T) {
	g := New(context.Background(), Limits{MaxBindings: 10})
	qe := g.BindingsError(12)
	if qe.Kind != KindBudget {
		t.Fatalf("want KindBudget, got %v", qe.Kind)
	}
	if !contains(qe.Msg, "binding limit") || !contains(qe.Msg, "reached 12") {
		t.Errorf("bindings message %q lacks limit/progress", qe.Msg)
	}
}

func TestPanicError(t *testing.T) {
	qe := PanicError("boom", "CONSTRUCT (n) MATCH (n)")
	if qe.Kind != KindInternal {
		t.Fatalf("want KindInternal, got %v", qe.Kind)
	}
	if !contains(qe.Error(), "boom") || !contains(qe.Error(), "CONSTRUCT (n) MATCH (n)") {
		t.Errorf("panic error %q lacks panic value or statement", qe.Error())
	}
}

func TestCheckpointRunsFaultProbe(t *testing.T) {
	faultinject.Arm()
	defer faultinject.Disarm()
	injected := fmt.Errorf("injected")
	faultinject.Set("test.fault", faultinject.Action{Err: injected})
	g := New(context.Background(), Limits{})
	if err := g.Checkpoint("test.fault"); !errors.Is(err, injected) {
		t.Fatalf("want injected error, got %v", err)
	}
	if faultinject.Hits("test.fault") != 1 {
		t.Fatalf("hit count = %d, want 1", faultinject.Hits("test.fault"))
	}
}
