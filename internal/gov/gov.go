// Package gov implements per-query execution governance: context
// cancellation, resource budgets and panic containment for the G-CORE
// evaluator. The paper's tractability guarantee (§6: every fixed
// query evaluates in polynomial time) still leaves "polynomial" free
// to mean seconds of CPU and unbounded intermediate state on
// SNB-scale data — ALL-path projections, k-shortest sweeps, CONSTRUCT
// grouping. A Governor is created per statement from the caller's
// context and the engine's Limits; every hot loop of the evaluation
// stack (node scans, edge expansion, WHERE filters, path searches in
// both the legacy and CSR kernels, CONSTRUCT grouping, and the worker
// pool's chunk dispatch) calls back into it at a checkpoint, so a
// cancelled or expired context, or an exhausted budget, stops the
// query within one checkpoint interval and surfaces as a typed
// *QueryError instead of unbounded work.
package gov

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync/atomic"
	"time"

	"gcore/internal/faultinject"
)

// Kind classifies a QueryError.
type Kind int

const (
	// KindEval is an ordinary evaluation error (type errors, unknown
	// names, semantic violations).
	KindEval Kind = iota
	// KindCanceled: the caller's context was cancelled mid-flight.
	KindCanceled
	// KindTimeout: the statement exceeded its deadline (Limits.Timeout
	// or a deadline already on the caller's context).
	KindTimeout
	// KindBudget: a resource limit (bindings, path frontier, result
	// elements) was exhausted.
	KindBudget
	// KindInternal: a panic was contained during evaluation; the
	// statement failed but the process — and the engine's registered
	// graphs — are intact.
	KindInternal
)

func (k Kind) String() string {
	switch k {
	case KindEval:
		return "eval"
	case KindCanceled:
		return "canceled"
	case KindTimeout:
		return "timeout"
	case KindBudget:
		return "budget"
	case KindInternal:
		return "internal"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// QueryError is the typed error the engine returns for governed
// failures: cancellation, timeout, exhausted budgets and contained
// panics. Callers switch on Kind; errors.Is sees the underlying
// context error through Unwrap.
type QueryError struct {
	Kind Kind
	Msg  string
	// Stmt carries the statement text for contained panics, so a log
	// line identifies the pathological query without a debugger.
	Stmt string
	// Err is the underlying cause (context.Canceled,
	// context.DeadlineExceeded) when one exists.
	Err error
}

func (e *QueryError) Error() string {
	msg := fmt.Sprintf("query error (%s): %s", e.Kind, e.Msg)
	if e.Stmt != "" {
		msg += fmt.Sprintf(" [statement: %s]", e.Stmt)
	}
	return msg
}

func (e *QueryError) Unwrap() error { return e.Err }

// AsQueryError extracts the *QueryError from an error chain.
func AsQueryError(err error) (*QueryError, bool) {
	var qe *QueryError
	if errors.As(err, &qe) {
		return qe, true
	}
	return nil, false
}

// Limits bounds one statement's resource use. The zero value means
// ungoverned (no limits) everywhere.
type Limits struct {
	// MaxBindings bounds intermediate binding-table sizes: a query
	// whose evaluation would materialise more rows fails with a
	// KindBudget error instead of exhausting memory.
	MaxBindings int
	// MaxPathFrontier bounds the total number of product-automaton
	// states a statement's path searches may explore (arrivals pushed
	// across every reachability, k-shortest and ALL-paths sweep).
	MaxPathFrontier int
	// MaxResultElements bounds the number of graph elements (nodes,
	// edges, paths) CONSTRUCT may build in one statement.
	MaxResultElements int
	// Timeout bounds wall-clock evaluation time per statement; the
	// engine derives a deadline context from it, so expiry surfaces
	// as a KindTimeout error at the next checkpoint.
	Timeout time.Duration
}

// Governor carries one statement's context and budget counters. All
// methods are safe for concurrent use by worker goroutines and are
// no-ops on a nil receiver (path kernels constructed outside the
// evaluator — tests, tools — run ungoverned).
type Governor struct {
	ctx      context.Context
	done     <-chan struct{}
	limits   Limits
	frontier atomic.Int64
	results  atomic.Int64
}

// New creates a governor for one statement. ctx must be non-nil
// (callers derive the Timeout deadline before constructing it).
func New(ctx context.Context, limits Limits) *Governor {
	return &Governor{ctx: ctx, done: ctx.Done(), limits: limits}
}

// Context returns the governed context (context.Background on a nil
// governor), for handing to the worker pool.
func (g *Governor) Context() context.Context {
	if g == nil {
		return context.Background()
	}
	return g.ctx
}

// Limits returns the governing limits (zero on a nil governor).
func (g *Governor) Limits() Limits {
	if g == nil {
		return Limits{}
	}
	return g.limits
}

// Checkpoint is the cancellation probe placed in every hot loop:
// first the fault-injection harness (a single atomic load when
// disarmed), then a non-blocking poll of the context. Loops that do
// trivial work per iteration call it on a small stride; everything
// else calls it per iteration.
func (g *Governor) Checkpoint(site string) error {
	if err := faultinject.Check(site); err != nil {
		return err
	}
	if g == nil {
		return nil
	}
	select {
	case <-g.done:
		return g.cancelErr()
	default:
		return nil
	}
}

// cancelErr classifies the context's failure: deadline expiry is a
// timeout, everything else a cancellation.
func (g *Governor) cancelErr() *QueryError {
	cause := g.ctx.Err()
	if errors.Is(cause, context.DeadlineExceeded) {
		msg := "evaluation exceeded its deadline"
		if g.limits.Timeout > 0 {
			msg = fmt.Sprintf("evaluation exceeded the %v statement timeout", g.limits.Timeout)
		}
		return &QueryError{Kind: KindTimeout, Msg: msg, Err: cause}
	}
	return &QueryError{Kind: KindCanceled, Msg: "evaluation canceled by the caller", Err: cause}
}

// CancelError classifies a bare context's failure state for callers
// without a governor (the worker pool when dispatch stops). Returns
// nil if ctx is still live.
func CancelError(ctx context.Context) error {
	cause := ctx.Err()
	if cause == nil {
		return nil
	}
	if errors.Is(cause, context.DeadlineExceeded) {
		return &QueryError{Kind: KindTimeout, Msg: "evaluation exceeded its deadline", Err: cause}
	}
	return &QueryError{Kind: KindCanceled, Msg: "evaluation canceled by the caller", Err: cause}
}

// GrowFrontier charges n product-automaton states against the path
// frontier budget; the error names the limit and the progress made.
func (g *Governor) GrowFrontier(n int) error {
	if g == nil || g.limits.MaxPathFrontier <= 0 {
		return nil
	}
	if total := g.frontier.Add(int64(n)); total > int64(g.limits.MaxPathFrontier) {
		return &QueryError{Kind: KindBudget, Msg: fmt.Sprintf(
			"path search exceeded the frontier limit (limit %d product states, explored %d); narrow the path pattern or raise Limits.MaxPathFrontier",
			g.limits.MaxPathFrontier, total)}
	}
	return nil
}

// AddResults charges n constructed graph elements against the result
// budget.
func (g *Governor) AddResults(n int) error {
	if g == nil || g.limits.MaxResultElements <= 0 {
		return nil
	}
	if total := g.results.Add(int64(n)); total > int64(g.limits.MaxResultElements) {
		return &QueryError{Kind: KindBudget, Msg: fmt.Sprintf(
			"CONSTRUCT exceeded the result limit (limit %d elements, built %d); tighten the match or raise Limits.MaxResultElements",
			g.limits.MaxResultElements, total)}
	}
	return nil
}

// FrontierUsed reports the product-automaton states charged so far.
// The counter is maintained only when MaxPathFrontier is set — the
// unlimited path deliberately skips the atomic so ungoverned kernels
// pay nothing — so observability reports it as "budget consumed", not
// as total frontier activity (kernel spans carry that).
func (g *Governor) FrontierUsed() int64 {
	if g == nil {
		return 0
	}
	return g.frontier.Load()
}

// ResultsUsed reports the constructed elements charged so far, under
// the same limit-gated caveat as FrontierUsed.
func (g *Governor) ResultsUsed() int64 {
	if g == nil {
		return 0
	}
	return g.results.Load()
}

// BindingsError is the KindBudget error for an overflowing binding
// table: rows is the size the table reached when the budget tripped.
func (g *Governor) BindingsError(rows int) *QueryError {
	limit := 0
	if g != nil {
		limit = g.limits.MaxBindings
	}
	return &QueryError{Kind: KindBudget, Msg: fmt.Sprintf(
		"evaluation exceeded the binding limit (limit %d rows, reached %d); narrow the patterns or raise Limits.MaxBindings",
		limit, rows)}
}

// PanicError converts a recovered panic value into the KindInternal
// error surfaced to the caller: the panic value, the statement text
// (when known at the recovery point) and the stack of the panicking
// goroutine.
func PanicError(recovered any, stmt string) *QueryError {
	return &QueryError{
		Kind: KindInternal,
		Msg:  fmt.Sprintf("panic during evaluation: %v\n%s", recovered, debug.Stack()),
		Stmt: stmt,
	}
}
