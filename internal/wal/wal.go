// Package wal is the engine's write-ahead log: an append-only,
// length-prefixed, CRC32C-checksummed record log with size-rolled
// segments, configurable fsync policies and compacted checkpoints.
//
// The log stores opaque payloads — the record semantics (graph
// mutations, catalog registrations) belong to the caller. What the
// package guarantees is the durability contract:
//
//   - A record is *committed* once Append returns with the sync policy
//     satisfied. Replay delivers every committed record, in order.
//   - A torn tail — bytes of a record that was being appended when the
//     process died — is detected by the length/checksum framing and
//     truncated on Open. Replay never runs past a bad checksum, and
//     never drops a record that a later good record follows (that is
//     corruption, not a torn tail, and fails loudly instead).
//   - Corruption anywhere before the tail quarantines the segment
//     (renamed with a ".corrupt" suffix) and surfaces a *CorruptError;
//     the log refuses to guess around missing committed data.
//
// Checkpoints compact the log: the caller materialises its state into
// a staging directory (BeginCheckpoint), and CommitCheckpoint makes it
// the durable recovery root — watermark file, fsyncs, an atomic rename
// into place, and a CURRENT pointer flip, in that order — then deletes
// the segments and older checkpoints it supersedes. Recovery is
// CurrentCheckpoint (load the state files) + ReplayFrom (apply the
// tail). A crash at any byte of this protocol leaves either the old or
// the new checkpoint current, never a half of each.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gcore/internal/faultinject"
)

// Segment framing. Every segment starts with an 8-byte magic; records
// follow back to back as
//
//	u32le payload length | u32le CRC32C(payload) | payload
//
// A record is valid iff its length is in (0, MaxRecord] and the
// checksum matches. Zeroed bytes (a preallocated or torn tail) fail
// the length check, a half-written payload fails the checksum, so the
// first invalid position is where replay stops.
const (
	headerLen    = 8
	recHeaderLen = 8
	// MaxRecord bounds one record's payload; a length above it is
	// treated as framing corruption, not an allocation request.
	MaxRecord = 1 << 30
)

var magic = [headerLen]byte{'G', 'C', 'W', 'A', 'L', '0', '0', '1'}

// castagnoli is the CRC32C polynomial table (the checksum used by
// iSCSI and most storage formats; hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SyncPolicy selects when appended records are fsynced to disk.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every record: a successful Append is a
	// committed record. The default, and the slowest.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs when at least Options.Interval has elapsed
	// since the previous fsync; records appended in between are
	// committed only by the next sync (or checkpoint).
	SyncInterval
	// SyncOnCheckpoint never fsyncs on Append: records become durable
	// only through checkpoints (and Close). The fastest policy; a crash
	// loses the tail since the last checkpoint.
	SyncOnCheckpoint
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncOnCheckpoint:
		return "on-checkpoint"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// Options configures a Log.
type Options struct {
	// SegmentSize is the roll threshold: an append that would grow the
	// current segment past it starts a new segment first. Default 4 MiB.
	SegmentSize int64
	// Policy selects the fsync policy. Default SyncAlways.
	Policy SyncPolicy
	// Interval is the SyncInterval period. Default 100ms.
	Interval time.Duration
	// GroupCommit batches concurrent SyncAlways appends into shared
	// fsyncs: one appender becomes the commit leader and its fsync
	// covers every record written before it ran; the others wait for
	// the leader instead of fsyncing themselves. The durability
	// contract is unchanged — Append still returns only once its record
	// is fsynced — only the fsync count drops. No effect under the
	// other policies (they already batch by design).
	GroupCommit bool
	// GroupWindow is how long a commit leader waits before fsyncing,
	// letting more concurrent appends land in the batch. Zero means
	// purely opportunistic batching (records queued behind the in-
	// flight fsync share the next one). Default 0.
	GroupWindow time.Duration
}

func (o Options) withDefaults() Options {
	if o.SegmentSize <= 0 {
		o.SegmentSize = 4 << 20
	}
	if o.Interval <= 0 {
		o.Interval = 100 * time.Millisecond
	}
	return o
}

// Watermark is a position in the log: the byte offset Off inside
// segment Seg at which the *next* record would start. Checkpoints
// store the watermark they were taken at; recovery replays from it.
type Watermark struct {
	Seg uint64 `json:"segment"`
	Off int64  `json:"offset"`
}

// Less orders watermarks by log position.
func (w Watermark) Less(o Watermark) bool {
	return w.Seg < o.Seg || (w.Seg == o.Seg && w.Off < o.Off)
}

func (w Watermark) String() string { return fmt.Sprintf("%d:%d", w.Seg, w.Off) }

// CorruptError reports framing or checksum corruption in committed log
// state — data that recovery needs but cannot trust. Torn tails are
// not corruption (they are truncated silently); a CorruptError means a
// segment before the tail, a checkpoint, or the segment sequence
// itself is damaged.
type CorruptError struct {
	// Path is the damaged file (its original name, even if it was
	// quarantined).
	Path string
	// Offset is the byte position of the damage, where applicable.
	Offset int64
	// Reason describes the damage.
	Reason string
	// Quarantined is the path the damaged file was renamed to, or ""
	// if it was left in place (read-only replay).
	Quarantined string
}

func (e *CorruptError) Error() string {
	msg := fmt.Sprintf("wal: corrupt %s at offset %d: %s", e.Path, e.Offset, e.Reason)
	if e.Quarantined != "" {
		msg += " (quarantined as " + filepath.Base(e.Quarantined) + ")"
	}
	return msg
}

// ErrClosed is returned by operations on a closed log.
var ErrClosed = fmt.Errorf("wal: log is closed")

// Stats are a log's lifetime counters, exposed through the engine's
// Metrics.
type Stats struct {
	Appends       int64 // committed Append calls
	AppendedBytes int64 // payload + framing bytes appended
	Batched       int64 // appends committed by another append's fsync (group commit)
	Syncs         int64 // fsync calls on segment files
	Rolls         int64 // segment rolls
	Checkpoints   int64 // committed checkpoints
	Replayed      int64 // records delivered by ReplayFrom
	TornTruncated int64 // torn-tail truncations performed by Open
}

// Log is an open write-ahead log directory. Safe for concurrent use;
// appends are serialised.
type Log struct {
	dir  string
	opts Options

	mu       sync.Mutex
	f        *os.File // current segment
	seg      uint64   // current segment sequence number
	off      int64    // current segment size
	lastSync time.Time
	closed   bool
	// broken is set when the log's on-disk state could not be restored
	// after a failed append (the uncommitted bytes may linger); every
	// later append fails with it, forcing a reopen (which re-truncates).
	broken error

	// Group-commit state. writeSeq numbers written records and
	// durableOff tracks the current segment's last fsynced offset
	// (both under l.mu; durableOff is also the truncation point when a
	// group fsync fails). The gc* fields coordinate waiters under gcMu:
	// records with seq ≤ gcSeqDurable are committed, records with
	// seq ≤ gcFailSeq were truncated by a failed group fsync. Lock
	// order is l.mu → gcMu, never the reverse.
	writeSeq   uint64
	durableOff int64
	gcMu       sync.Mutex
	gcCond     *sync.Cond
	gcSyncing  bool
	gcDurable  uint64
	gcFailSeq  uint64
	gcFailErr  error

	appends, appendedBytes, batched, syncs, rolls, checkpoints, replayed, torn atomic.Int64
}

func segName(seq uint64) string { return fmt.Sprintf("%016d.wal", seq) }

// segSeq parses a segment file name; ok is false for other files.
func segSeq(name string) (uint64, bool) {
	if !strings.HasSuffix(name, ".wal") || len(name) != 16+4 {
		return 0, false
	}
	n, err := strconv.ParseUint(name[:16], 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// segments lists the segment sequence numbers in dir, ascending.
func segments(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, ent := range ents {
		if seq, ok := segSeq(ent.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// Open opens (creating if needed) the log directory. It garbage-
// collects checkpoint staging debris, truncates a torn tail off the
// last segment, and deletes segments already compacted into the
// current checkpoint. The returned log appends after the last
// committed record.
func Open(dir string, opts Options) (*Log, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opts: opts, lastSync: time.Now()}
	l.gcCond = sync.NewCond(&l.gcMu)
	if err := l.gcCheckpoints(); err != nil {
		return nil, err
	}
	seqs, err := segments(dir)
	if err != nil {
		return nil, err
	}
	// Drop a torn roll: a trailing segment too short to hold its header
	// was being created when the process died; no record can be in it.
	for len(seqs) > 0 {
		last := seqs[len(seqs)-1]
		fi, err := os.Stat(filepath.Join(dir, segName(last)))
		if err != nil {
			return nil, err
		}
		if fi.Size() >= headerLen {
			break
		}
		if err := os.Remove(filepath.Join(dir, segName(last))); err != nil {
			return nil, err
		}
		seqs = seqs[:len(seqs)-1]
	}
	if len(seqs) == 0 {
		// A checkpoint's watermark segment is never compacted away, so
		// a checkpoint with no segments means committed data was lost.
		if _, wm, err := l.currentCheckpointLocked(); err == nil && wm.Seg > 0 {
			return nil, &CorruptError{
				Path:   filepath.Join(dir, segName(wm.Seg)),
				Reason: "checkpoint watermark segment missing",
			}
		}
		if err := l.createSegment(1); err != nil {
			return nil, err
		}
		return l, nil
	}
	// Open the last segment and truncate its torn tail, if any.
	last := seqs[len(seqs)-1]
	path := filepath.Join(dir, segName(last))
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := checkSegmentHeader(f, path); err != nil {
		f.Close()
		return nil, err
	}
	end, tornAt, err := scanSegment(f, nil)
	if err != nil {
		f.Close()
		return nil, err
	}
	if tornAt >= 0 {
		if err := f.Truncate(end); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: truncating torn tail of %s: %w", path, err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, err
		}
		l.torn.Add(1)
	}
	if _, err := f.Seek(end, 0); err != nil {
		f.Close()
		return nil, err
	}
	l.f, l.seg, l.off = f, last, end
	l.durableOff = end
	// Compaction GC: segments fully below the current checkpoint's
	// watermark are no longer needed for recovery. (Deletion normally
	// happens at CommitCheckpoint; this sweeps up after a crash between
	// the CURRENT flip and the deletes.)
	if _, wm, err := l.currentCheckpointLocked(); err == nil {
		for _, seq := range seqs {
			if seq < wm.Seg {
				if err := os.Remove(filepath.Join(dir, segName(seq))); err != nil && !os.IsNotExist(err) {
					return nil, err
				}
			}
		}
	}
	return l, nil
}

// createSegment starts segment seq and makes it current. Callers hold
// l.mu (or are initialising).
func (l *Log) createSegment(seq uint64) error {
	path := filepath.Join(l.dir, segName(seq))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(magic[:]); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := syncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.f, l.seg, l.off = f, seq, headerLen
	l.durableOff = headerLen
	return nil
}

// checkSegmentHeader validates the magic of an open segment file.
func checkSegmentHeader(f *os.File, path string) error {
	var hdr [headerLen]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return &CorruptError{Path: path, Offset: 0, Reason: "unreadable segment header"}
	}
	if hdr != magic {
		return &CorruptError{Path: path, Offset: 0, Reason: "bad segment magic"}
	}
	return nil
}

// scanSegment walks the records of a segment from the header on,
// calling fn (when non-nil) with each valid payload. It returns the
// offset after the last valid record, and tornAt = the offset of the
// first invalid byte (-1 if the segment ends cleanly). The payload
// passed to fn is a fresh copy the callee may keep.
func scanSegment(f *os.File, fn func(payload []byte, start int64) error) (end int64, tornAt int64, err error) {
	fi, err := f.Stat()
	if err != nil {
		return 0, -1, err
	}
	size := fi.Size()
	off := int64(headerLen)
	var hdr [recHeaderLen]byte
	for {
		if off == size {
			return off, -1, nil // clean end
		}
		if off+recHeaderLen > size {
			return off, off, nil // torn record header
		}
		if _, err := f.ReadAt(hdr[:], off); err != nil {
			return 0, -1, err
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if length == 0 || length > MaxRecord {
			return off, off, nil // zeroed or garbage length: torn
		}
		if off+recHeaderLen+int64(length) > size {
			return off, off, nil // torn payload
		}
		payload := make([]byte, length)
		if _, err := f.ReadAt(payload, off+recHeaderLen); err != nil {
			return 0, -1, err
		}
		if crc32.Checksum(payload, castagnoli) != sum {
			return off, off, nil // checksum mismatch: torn (or corrupt — the caller decides by position)
		}
		if fn != nil {
			if err := fn(payload, off); err != nil {
				return off, -1, err
			}
		}
		off += recHeaderLen + int64(length)
	}
}

// Append writes one record. On return with a nil error the record is
// appended (and, under SyncAlways, committed); the returned watermark
// is the log position after it. On any failure the log restores its
// on-disk state to the previous watermark — a failed append is never
// replayed — or, if even that fails, poisons the log so the caller
// must reopen (which re-truncates).
func (l *Log) Append(payload []byte) (Watermark, error) {
	l.mu.Lock()
	wm, recLen, seq, group, err := l.appendLocked(payload)
	l.mu.Unlock()
	if err != nil {
		return Watermark{}, err
	}
	if group {
		// Group commit: the record is written but not yet durable.
		// Wait until some appender's fsync (possibly ours) covers it.
		if err := l.waitDurable(seq); err != nil {
			return Watermark{}, err
		}
	}
	l.appends.Add(1)
	l.appendedBytes.Add(recLen)
	return wm, nil
}

// appendLocked frames and writes one record under l.mu. Under group
// commit it returns group=true with the record's write sequence and
// leaves durability to Append; otherwise it applies the sync policy
// inline, exactly as before group commit existed.
func (l *Log) appendLocked(payload []byte) (wm Watermark, recLen int64, seq uint64, group bool, err error) {
	if l.closed {
		return Watermark{}, 0, 0, false, ErrClosed
	}
	if l.broken != nil {
		return Watermark{}, 0, 0, false, l.broken
	}
	if len(payload) == 0 {
		return Watermark{}, 0, 0, false, fmt.Errorf("wal: empty record")
	}
	if len(payload) > MaxRecord {
		return Watermark{}, 0, 0, false, fmt.Errorf("wal: record of %d bytes exceeds MaxRecord", len(payload))
	}
	if err := faultinject.Check(faultinject.SiteWALAppend); err != nil {
		return Watermark{}, 0, 0, false, fmt.Errorf("wal: append to %s: %w", segName(l.seg), err)
	}
	recLen = int64(recHeaderLen + len(payload))
	if l.off+recLen > l.opts.SegmentSize && l.off > headerLen {
		if err := l.rollLocked(); err != nil {
			return Watermark{}, 0, 0, false, err
		}
	}
	buf := make([]byte, recLen)
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, castagnoli))
	copy(buf[recHeaderLen:], payload)
	start := l.off
	if err := faultinject.Check(faultinject.SiteWALShortWrite); err != nil {
		// Simulated torn write: leave half the record on disk, fail the
		// append, and restore the pre-append state like any I/O error.
		l.f.Write(buf[:len(buf)/2])
		l.failAppend(start)
		return Watermark{}, 0, 0, false, fmt.Errorf("wal: short write to %s: %w", segName(l.seg), err)
	}
	if _, err := l.f.Write(buf); err != nil {
		l.failAppend(start)
		return Watermark{}, 0, 0, false, fmt.Errorf("wal: append to %s: %w", segName(l.seg), err)
	}
	l.off += recLen
	l.writeSeq++
	wm = Watermark{Seg: l.seg, Off: l.off}
	if l.opts.Policy == SyncAlways && l.opts.GroupCommit {
		return wm, recLen, l.writeSeq, true, nil
	}
	switch l.opts.Policy {
	case SyncAlways:
		if err := l.syncLocked(); err != nil {
			l.failAppend(start)
			return Watermark{}, 0, 0, false, err
		}
	case SyncInterval:
		if time.Since(l.lastSync) >= l.opts.Interval {
			if err := l.syncLocked(); err != nil {
				l.failAppend(start)
				return Watermark{}, 0, 0, false, err
			}
		}
	}
	return wm, recLen, 0, false, nil
}

// waitDurable blocks until the record at write sequence seq is
// committed or failed. The first waiter whose record is not yet
// covered becomes the commit leader and runs the fsync; everyone else
// sleeps on the condition and is committed (or failed) wholesale by
// the leader's outcome. A failed group fsync truncates the segment
// back to its last durable offset, so a failed record is never
// replayed — the same contract as a solo append.
func (l *Log) waitDurable(seq uint64) error {
	led := false
	l.gcMu.Lock()
	for {
		// Failure first: a truncated record's sequence may later be
		// numerically covered by gcDurable as new appends commit.
		if seq <= l.gcFailSeq {
			err := l.gcFailErr
			l.gcMu.Unlock()
			return err
		}
		if seq <= l.gcDurable {
			l.gcMu.Unlock()
			if !led {
				l.batched.Add(1)
			}
			return nil
		}
		if !l.gcSyncing {
			l.gcSyncing = true
			l.gcMu.Unlock()
			led = true
			l.leadSync()
			l.gcMu.Lock()
			l.gcSyncing = false
			l.gcCond.Broadcast()
			continue
		}
		l.gcCond.Wait()
	}
}

// leadSync is one group-commit leader round: optionally linger for
// GroupWindow so more appends join the batch, then fsync once under
// l.mu. Success marks every record written before the fsync durable
// (syncLocked advances gcDurable); failure truncates the undurable
// tail and fails every record in it.
func (l *Log) leadSync() {
	if w := l.opts.GroupWindow; w > 0 {
		time.Sleep(w)
	}
	l.mu.Lock()
	if l.closed || l.broken != nil {
		err := l.broken
		if err == nil {
			err = ErrClosed
		}
		l.failGroupLocked(err)
		l.mu.Unlock()
		return
	}
	if err := l.syncLocked(); err != nil {
		// Truncate the unsynced tail so no failed record can be
		// replayed; if the truncation itself fails the log is poisoned.
		l.failAppend(l.durableOff)
		l.failGroupLocked(err)
		l.mu.Unlock()
		return
	}
	l.mu.Unlock()
}

// failGroupLocked fails every record written so far that is not yet
// durable. Callers hold l.mu.
func (l *Log) failGroupLocked(err error) {
	l.gcMu.Lock()
	if l.writeSeq > l.gcFailSeq {
		l.gcFailSeq = l.writeSeq
		l.gcFailErr = err
	}
	l.gcMu.Unlock()
	l.gcCond.Broadcast()
}

// failAppend restores the segment to offset start after a failed
// append, so the partial (or unsynced) record can never be replayed.
// If restoration itself fails the log is poisoned.
func (l *Log) failAppend(start int64) {
	if err := l.f.Truncate(start); err != nil {
		l.broken = fmt.Errorf("wal: log broken: failed append could not be truncated: %w", err)
		return
	}
	if _, err := l.f.Seek(start, 0); err != nil {
		l.broken = fmt.Errorf("wal: log broken: %w", err)
		return
	}
	if err := l.f.Sync(); err != nil {
		l.broken = fmt.Errorf("wal: log broken: truncation of failed append not durable: %w", err)
		return
	}
	l.off = start
}

// rollLocked finishes the current segment and starts the next one.
func (l *Log) rollLocked() error {
	if err := faultinject.Check(faultinject.SiteWALRoll); err != nil {
		return fmt.Errorf("wal: rolling %s: %w", segName(l.seg), err)
	}
	// The finished segment must be durable before records land in the
	// next one, or replay could see new records after a lost tail.
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	l.f = nil
	if err := l.createSegment(l.seg + 1); err != nil {
		return fmt.Errorf("wal: creating segment %d: %w", l.seg+1, err)
	}
	l.rolls.Add(1)
	return nil
}

func (l *Log) syncLocked() error {
	if err := faultinject.Check(faultinject.SiteWALSync); err != nil {
		return fmt.Errorf("wal: fsync %s: %w", segName(l.seg), err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync %s: %w", segName(l.seg), err)
	}
	l.syncs.Add(1)
	l.lastSync = time.Now()
	l.durableOff = l.off
	if l.opts.GroupCommit {
		// Every record written before this fsync is now committed.
		l.gcMu.Lock()
		l.gcDurable = l.writeSeq
		l.gcMu.Unlock()
		l.gcCond.Broadcast()
	}
	return nil
}

// Sync forces an fsync of the current segment regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.broken != nil {
		return l.broken
	}
	return l.syncLocked()
}

// Watermark returns the position after the last appended record.
func (l *Log) Watermark() Watermark {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Watermark{Seg: l.seg, Off: l.off}
}

// Close syncs and closes the log. Appends after Close fail.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.f == nil {
		return nil
	}
	var firstErr error
	if l.broken == nil {
		if err := l.syncLocked(); err != nil {
			firstErr = err
		}
	}
	if err := l.f.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	l.f = nil
	return firstErr
}

// Stats returns the log's lifetime counters.
func (l *Log) Stats() Stats {
	return Stats{
		Appends:       l.appends.Load(),
		AppendedBytes: l.appendedBytes.Load(),
		Batched:       l.batched.Load(),
		Syncs:         l.syncs.Load(),
		Rolls:         l.rolls.Load(),
		Checkpoints:   l.checkpoints.Load(),
		Replayed:      l.replayed.Load(),
		TornTruncated: l.torn.Load(),
	}
}

// ReplayFrom delivers every committed record at or after the
// watermark, in append order. A damaged segment before the tail is
// quarantined (renamed *.corrupt) and reported as a *CorruptError; a
// torn tail on the last segment simply ends the replay (Open has
// already truncated it for this log). fn errors abort the replay.
func (l *Log) ReplayFrom(from Watermark, fn func(payload []byte) error) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	dir, lastSeg := l.dir, l.seg
	l.mu.Unlock()
	n, err := replay(dir, lastSeg, from, fn, true)
	l.replayed.Add(n)
	return err
}

// Replay is the read-only form of ReplayFrom for a log directory that
// is not (and will not be) opened: it tolerates a torn tail on the
// last segment without truncating anything, and reports — without
// quarantining — corruption before it. Tools and crash-simulation
// tests use it to enumerate the surviving committed prefix.
func Replay(dir string, from Watermark, fn func(payload []byte) error) error {
	seqs, err := segments(dir)
	if err != nil {
		return err
	}
	var lastSeg uint64
	if len(seqs) > 0 {
		lastSeg = seqs[len(seqs)-1]
	}
	_, err = replay(dir, lastSeg, from, fn, false)
	return err
}

func replay(dir string, lastSeg uint64, from Watermark, fn func(payload []byte) error, quarantine bool) (int64, error) {
	seqs, err := segments(dir)
	if err != nil {
		return 0, err
	}
	if len(seqs) == 0 {
		if from.Seg == 0 {
			return 0, nil
		}
		return 0, &CorruptError{
			Path:   filepath.Join(dir, segName(from.Seg)),
			Reason: "watermark segment missing",
		}
	}
	startSeg := from.Seg
	if startSeg == 0 {
		startSeg = seqs[0]
	} else {
		present := false
		for _, seq := range seqs {
			present = present || seq == from.Seg
		}
		if !present {
			return 0, &CorruptError{
				Path:   filepath.Join(dir, segName(from.Seg)),
				Reason: "watermark segment missing",
			}
		}
	}
	var replayed int64
	prev := uint64(0)
	for _, seq := range seqs {
		if seq < startSeg {
			continue
		}
		if prev != 0 && seq != prev+1 {
			return replayed, &CorruptError{
				Path:   filepath.Join(dir, segName(prev+1)),
				Reason: fmt.Sprintf("missing segment %d (sequence jumps to %d)", prev+1, seq),
			}
		}
		prev = seq
		isLast := seq == lastSeg
		n, err := replaySegment(dir, seq, from, isLast, fn, quarantine)
		replayed += n
		if err != nil {
			return replayed, err
		}
	}
	return replayed, nil
}

func replaySegment(dir string, seq uint64, from Watermark, isLast bool, fn func(payload []byte) error, quarantine bool) (int64, error) {
	path := filepath.Join(dir, segName(seq))
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	if err := checkSegmentHeader(f, path); err != nil {
		if ce, ok := err.(*CorruptError); ok && quarantine {
			ce.Quarantined = quarantinePath(path)
			os.Rename(path, ce.Quarantined)
		}
		return 0, err
	}
	start := int64(headerLen)
	if seq == from.Seg && from.Off > start {
		start = from.Off
	}
	var n int64
	_, tornAt, err := scanSegment(f, func(payload []byte, off int64) error {
		if off < start {
			return nil
		}
		n++
		return fn(payload)
	})
	if err != nil {
		return n, err
	}
	if tornAt >= 0 && !isLast {
		// Invalid bytes with committed segments after them: that is
		// corruption of committed data, not a torn tail.
		ce := &CorruptError{Path: path, Offset: tornAt, Reason: "bad record before the log tail"}
		if quarantine {
			ce.Quarantined = quarantinePath(path)
			os.Rename(path, ce.Quarantined)
		}
		return n, ce
	}
	return n, nil
}

// quarantinePath picks a non-clobbering *.corrupt name for a damaged
// file.
func quarantinePath(path string) string {
	q := path + ".corrupt"
	for i := 1; ; i++ {
		if _, err := os.Stat(q); os.IsNotExist(err) {
			return q
		}
		q = fmt.Sprintf("%s.corrupt.%d", path, i)
	}
}

// syncDir fsyncs a directory so renames and creates inside it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
