package wal

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"gcore/internal/faultinject"
)

// Checkpoint protocol. A checkpoint is a directory of caller-written
// state files plus the watermark the state was captured at:
//
//	<log>/ckpt-<seq>/            committed checkpoint
//	    watermark.json           {"segment": S, "offset": O}
//	    ...caller state files... (the engine's catalog JSON layout)
//	<log>/CURRENT                {"dir": "ckpt-<seq>"} — the recovery root
//
// CommitCheckpoint orders writes so that a crash at any point leaves
// CURRENT referencing a complete checkpoint: the staging directory is
// fully written and fsynced, renamed to its final name, the parent
// directory fsynced, and only then is CURRENT flipped (itself via
// write-temp + rename + dir fsync). Superseded checkpoints and the
// segments below the new watermark are deleted last — their loss was
// already harmless.

const (
	currentFile   = "CURRENT"
	watermarkFile = "watermark.json"
	ckptPrefix    = "ckpt-"
	ckptStaging   = "ckpt-tmp-"
)

type currentDoc struct {
	Dir string `json:"dir"`
}

func ckptName(seq uint64) string { return fmt.Sprintf("%s%016d", ckptPrefix, seq) }

// ckptSeq parses a committed checkpoint directory name.
func ckptSeq(name string) (uint64, bool) {
	if !strings.HasPrefix(name, ckptPrefix) || strings.HasPrefix(name, ckptStaging) {
		return 0, false
	}
	n, err := strconv.ParseUint(name[len(ckptPrefix):], 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// BeginCheckpoint creates and returns a staging directory inside the
// log directory. The caller writes its state files into it and then
// either commits it with CommitCheckpoint or abandons it (Open and
// CommitCheckpoint garbage-collect stale staging directories).
func (l *Log) BeginCheckpoint() (string, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return "", ErrClosed
	}
	return os.MkdirTemp(l.dir, ckptStaging+"*")
}

// CommitCheckpoint makes the staged state the durable recovery root
// for watermark wm, then compacts: older checkpoints and segments
// fully below wm are deleted. On error the previous checkpoint (if
// any) remains current and the log remains usable.
func (l *Log) CommitCheckpoint(stage string, wm Watermark) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	// The checkpointed state must never be *ahead* of the durable log
	// at its watermark: fsync the tail first, whatever the policy.
	if l.broken == nil && l.f != nil {
		if err := l.syncLocked(); err != nil {
			return err
		}
	}
	data, err := json.MarshalIndent(wm, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(stage, watermarkFile), data, 0o644); err != nil {
		return err
	}
	if err := syncTree(stage); err != nil {
		return err
	}
	seq, err := l.nextCkptSeq()
	if err != nil {
		return err
	}
	final := filepath.Join(l.dir, ckptName(seq))
	if err := faultinject.Check(faultinject.SiteWALCheckpointRename); err != nil {
		return fmt.Errorf("wal: committing checkpoint %s: %w", ckptName(seq), err)
	}
	if err := os.Rename(stage, final); err != nil {
		return err
	}
	if err := syncDir(l.dir); err != nil {
		return err
	}
	// Flip CURRENT. From here the new checkpoint is the recovery root.
	cur, err := json.Marshal(currentDoc{Dir: ckptName(seq)})
	if err != nil {
		return err
	}
	tmp := filepath.Join(l.dir, currentFile+".tmp")
	if err := writeFileSync(tmp, cur); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(l.dir, currentFile)); err != nil {
		return err
	}
	if err := syncDir(l.dir); err != nil {
		return err
	}
	l.checkpoints.Add(1)
	// Compact: everything the new checkpoint supersedes.
	if err := l.gcLocked(ckptName(seq), wm); err != nil {
		return err
	}
	return nil
}

// CurrentCheckpoint resolves the recovery root: the committed
// checkpoint directory and its watermark. ok is false when no
// checkpoint has ever been committed (recover by replaying the whole
// log). A CURRENT pointer to a missing or unreadable checkpoint is
// corruption.
func (l *Log) CurrentCheckpoint() (dir string, wm Watermark, ok bool, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	dir, wm, err = l.currentCheckpointLocked()
	if err != nil || dir == "" {
		return "", Watermark{}, false, err
	}
	return dir, wm, true, nil
}

func (l *Log) currentCheckpointLocked() (string, Watermark, error) {
	data, err := os.ReadFile(filepath.Join(l.dir, currentFile))
	if os.IsNotExist(err) {
		return "", Watermark{}, nil
	}
	if err != nil {
		return "", Watermark{}, err
	}
	var cur currentDoc
	if err := json.Unmarshal(data, &cur); err != nil {
		return "", Watermark{}, &CorruptError{Path: filepath.Join(l.dir, currentFile), Reason: "undecodable CURRENT pointer"}
	}
	if _, ok := ckptSeq(cur.Dir); !ok || strings.ContainsAny(cur.Dir, `/\`) {
		return "", Watermark{}, &CorruptError{Path: filepath.Join(l.dir, currentFile), Reason: fmt.Sprintf("CURRENT names %q, not a checkpoint", cur.Dir)}
	}
	ckptDir := filepath.Join(l.dir, cur.Dir)
	wdata, err := os.ReadFile(filepath.Join(ckptDir, watermarkFile))
	if err != nil {
		return "", Watermark{}, &CorruptError{Path: ckptDir, Reason: "checkpoint has no readable watermark"}
	}
	var wm Watermark
	if err := json.Unmarshal(wdata, &wm); err != nil {
		return "", Watermark{}, &CorruptError{Path: filepath.Join(ckptDir, watermarkFile), Reason: "undecodable watermark"}
	}
	return ckptDir, wm, nil
}

// nextCkptSeq picks the next checkpoint sequence number from the
// directories present.
func (l *Log) nextCkptSeq() (uint64, error) {
	ents, err := os.ReadDir(l.dir)
	if err != nil {
		return 0, err
	}
	var max uint64
	for _, ent := range ents {
		if seq, ok := ckptSeq(ent.Name()); ok && seq > max {
			max = seq
		}
	}
	return max + 1, nil
}

// gcCheckpoints removes staging debris and checkpoints that CURRENT
// does not reference (crashed or superseded commits). Called by Open.
func (l *Log) gcCheckpoints() error {
	cur, wm, err := l.currentCheckpointLocked()
	if err != nil {
		// A corrupt CURRENT is reported by recovery, not here; leave
		// everything in place for inspection.
		return nil
	}
	keep := ""
	if cur != "" {
		keep = filepath.Base(cur)
	}
	_ = wm
	ents, err := os.ReadDir(l.dir)
	if err != nil {
		return err
	}
	for _, ent := range ents {
		name := ent.Name()
		remove := strings.HasPrefix(name, ckptStaging) || name == currentFile+".tmp"
		if _, ok := ckptSeq(name); ok && name != keep {
			remove = true
		}
		if !remove {
			continue
		}
		if err := os.RemoveAll(filepath.Join(l.dir, name)); err != nil {
			return err
		}
	}
	return nil
}

// gcLocked deletes superseded checkpoints and compacted segments
// after a commit of keep at watermark wm.
func (l *Log) gcLocked(keep string, wm Watermark) error {
	ents, err := os.ReadDir(l.dir)
	if err != nil {
		return err
	}
	for _, ent := range ents {
		name := ent.Name()
		if _, ok := ckptSeq(name); (ok && name != keep) || strings.HasPrefix(name, ckptStaging) {
			if err := os.RemoveAll(filepath.Join(l.dir, name)); err != nil {
				return err
			}
			continue
		}
		if seq, ok := segSeq(name); ok && seq < wm.Seg {
			if err := os.Remove(filepath.Join(l.dir, name)); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeFileSync writes data to path and fsyncs the file.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncTree fsyncs every regular file under dir and then dir itself.
func syncTree(dir string) error {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].Name() < ents[j].Name() })
	for _, ent := range ents {
		if !ent.Type().IsRegular() {
			continue
		}
		f, err := os.Open(filepath.Join(dir, ent.Name()))
		if err != nil {
			return err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		f.Close()
	}
	return syncDir(dir)
}
