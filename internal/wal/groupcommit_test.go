package wal

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"gcore/internal/faultinject"
)

// Group commit must not change the durability contract: every Append
// that returned nil is replayed, regardless of which goroutine's fsync
// committed it.
func TestGroupCommitConcurrentReplayAll(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncAlways, GroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 8, 50
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if _, err := l.Append([]byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Appends != writers*perWriter {
		t.Fatalf("Appends = %d, want %d", st.Appends, writers*perWriter)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	if err := Replay(dir, Watermark{}, func(p []byte) error {
		got[string(p)] = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			if key := fmt.Sprintf("w%d-%d", w, i); !got[key] {
				t.Fatalf("committed record %s missing from replay", key)
			}
		}
	}
}

// With a linger window and concurrent writers, a single leader fsync
// must be committing multiple records — strictly fewer fsyncs than
// appends.
func TestGroupCommitBatchesFsyncs(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncAlways, GroupCommit: true, GroupWindow: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const writers, perWriter = 4, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if _, err := l.Append([]byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := l.Stats()
	if st.Appends != writers*perWriter {
		t.Fatalf("Appends = %d, want %d", st.Appends, writers*perWriter)
	}
	if st.Syncs >= st.Appends {
		t.Fatalf("no batching: %d fsyncs for %d appends", st.Syncs, st.Appends)
	}
	if st.Batched == 0 {
		t.Fatal("Batched = 0 with concurrent group commit")
	}
}

// A single sequential writer under group commit leads every commit
// itself: no batching, one fsync per append, same as plain SyncAlways.
func TestGroupCommitSoloWriter(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncAlways, GroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	for i := 0; i < n; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("r%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Batched != 0 {
		t.Fatalf("Batched = %d for a sequential writer", st.Batched)
	}
	if st.Syncs < n {
		t.Fatalf("Syncs = %d, want at least %d (one per append)", st.Syncs, n)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	var count int
	if err := Replay(dir, Watermark{}, func([]byte) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("replayed %d records, want %d", count, n)
	}
}

// A failed group fsync must fail the waiting appends and leave no
// uncommitted bytes for recovery to replay.
func TestGroupCommitSyncFailureRollsBack(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncAlways, GroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	const committed = 3
	for i := 0; i < committed; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("ok%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	faultinject.Arm()
	faultinject.Set(faultinject.SiteWALSync, faultinject.Action{Err: fmt.Errorf("boom")})
	if _, err := l.Append([]byte("doomed")); err == nil {
		t.Fatal("append with failing fsync returned nil")
	}
	faultinject.Disarm()
	l.Close()
	var got []string
	if err := Replay(dir, Watermark{}, func(p []byte) error {
		got = append(got, string(p))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != committed {
		t.Fatalf("replayed %v, want exactly the %d committed records", got, committed)
	}
	for _, p := range got {
		if p == "doomed" {
			t.Fatal("failed append was replayed")
		}
	}
}

// BenchmarkWALGroupCommit measures committed-append throughput under
// concurrent writers with per-record durability (SyncAlways): solo
// fsyncs versus group commit sharing them.
func BenchmarkWALGroupCommit(b *testing.B) {
	for _, gc := range []bool{false, true} {
		name := "solo-fsync"
		if gc {
			name = "group-commit"
		}
		b.Run(name, func(b *testing.B) {
			dir := b.TempDir()
			l, err := Open(dir, Options{Policy: SyncAlways, SegmentSize: 1 << 30, GroupCommit: gc})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			payload := bytes.Repeat([]byte{'p'}, 128)
			b.SetBytes(int64(len(payload) + recHeaderLen))
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := l.Append(payload); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}
