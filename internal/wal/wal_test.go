package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func mustOpen(t *testing.T, dir string, opts Options) *Log {
	t.Helper()
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func collect(t *testing.T, l *Log, from Watermark) []string {
	t.Helper()
	var got []string
	if err := l.ReplayFrom(from, func(p []byte) error {
		got = append(got, string(p))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return got
}

func TestAppendReplayRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	var want []string
	for i := 0; i < 20; i++ {
		p := fmt.Sprintf("record-%02d", i)
		if _, err := l.Append([]byte(p)); err != nil {
			t.Fatal(err)
		}
		want = append(want, p)
	}
	got := collect(t, l, Watermark{})
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: got %q want %q", i, got[i], want[i])
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen delivers the same records.
	l2 := mustOpen(t, dir, Options{})
	defer l2.Close()
	got = collect(t, l2, Watermark{})
	if len(got) != len(want) {
		t.Fatalf("after reopen: replayed %d records, want %d", len(got), len(want))
	}
}

func TestSegmentRoll(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: every record ends up in its own segment.
	l := mustOpen(t, dir, Options{SegmentSize: 32})
	for i := 0; i < 5; i++ {
		if _, err := l.Append(bytes.Repeat([]byte{'x'}, 24)); err != nil {
			t.Fatal(err)
		}
	}
	if s := l.Stats(); s.Rolls == 0 {
		t.Fatal("expected segment rolls")
	}
	seqs, err := segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) < 2 {
		t.Fatalf("expected multiple segments, got %v", seqs)
	}
	if got := collect(t, l, Watermark{}); len(got) != 5 {
		t.Fatalf("replayed %d records across segments, want 5", len(got))
	}
	l.Close()
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	for i := 0; i < 3; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("rec%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	// Simulate a torn append: half a record at the tail.
	path := filepath.Join(dir, segName(1))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	var hdr [recHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], 100)
	binary.LittleEndian.PutUint32(hdr[4:8], 0xdeadbeef)
	f.Write(hdr[:])
	f.Write([]byte("only-part-of-the-payload"))
	f.Close()

	l2 := mustOpen(t, dir, Options{})
	defer l2.Close()
	if s := l2.Stats(); s.TornTruncated != 1 {
		t.Fatalf("TornTruncated = %d, want 1", s.TornTruncated)
	}
	if got := collect(t, l2, Watermark{}); len(got) != 3 {
		t.Fatalf("replayed %d records after torn tail, want 3", len(got))
	}
	// The log appends cleanly after truncation.
	if _, err := l2.Append([]byte("rec3")); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, l2, Watermark{}); len(got) != 4 || got[3] != "rec3" {
		t.Fatalf("after post-truncation append: %q", got)
	}
}

// TestPowerCutEveryByte is the wal-level power-cut sweep: a recorded
// run is copied and truncated at every byte offset, and the read-only
// Replay must deliver exactly the records that fit entirely below the
// cut — never a partial record, never fewer than the committed prefix.
func TestPowerCutEveryByte(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	var ends []int64 // end offset of each record
	for i := 0; i < 8; i++ {
		wm, err := l.Append([]byte(fmt.Sprintf("payload-%d-%s", i, strings.Repeat("x", i*3))))
		if err != nil {
			t.Fatal(err)
		}
		ends = append(ends, wm.Off)
	}
	l.Close()
	data, err := os.ReadFile(filepath.Join(dir, segName(1)))
	if err != nil {
		t.Fatal(err)
	}
	for cut := int64(headerLen); cut <= int64(len(data)); cut++ {
		want := 0
		for _, end := range ends {
			if end <= cut {
				want++
			}
		}
		cutDir := t.TempDir()
		if err := os.WriteFile(filepath.Join(cutDir, segName(1)), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got := 0
		if err := Replay(cutDir, Watermark{}, func(p []byte) error {
			got++
			return nil
		}); err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if got != want {
			t.Fatalf("cut at byte %d: replayed %d records, want %d", cut, got, want)
		}
	}
}

func TestCorruptMiddleSegmentQuarantined(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{SegmentSize: 64})
	for i := 0; i < 6; i++ {
		if _, err := l.Append(bytes.Repeat([]byte{byte('a' + i)}, 40)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	seqs, _ := segments(dir)
	if len(seqs) < 3 {
		t.Fatalf("need 3+ segments, got %v", seqs)
	}
	// Flip a payload byte in the first segment: committed data damaged.
	path := filepath.Join(dir, segName(seqs[0]))
	data, _ := os.ReadFile(path)
	data[headerLen+recHeaderLen+5] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l2 := mustOpen(t, dir, Options{SegmentSize: 64})
	defer l2.Close()
	err := l2.ReplayFrom(Watermark{}, func(p []byte) error { return nil })
	ce, ok := err.(*CorruptError)
	if !ok {
		t.Fatalf("got %v, want *CorruptError", err)
	}
	if ce.Quarantined == "" {
		t.Fatal("corrupt segment was not quarantined")
	}
	if _, err := os.Stat(ce.Quarantined); err != nil {
		t.Fatalf("quarantine file: %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("damaged segment still in place under its original name")
	}
}

func TestCorruptionNeverReplayedPast(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{SegmentSize: 64})
	for i := 0; i < 6; i++ {
		if _, err := l.Append(bytes.Repeat([]byte{byte('a' + i)}, 40)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	seqs, _ := segments(dir)
	path := filepath.Join(dir, segName(seqs[0]))
	data, _ := os.ReadFile(path)
	data[headerLen+recHeaderLen+5] ^= 0xff
	os.WriteFile(path, data, 0o644)
	// Read-only replay reports the damage and delivers nothing from the
	// damaged record on.
	var got []string
	err := Replay(dir, Watermark{}, func(p []byte) error {
		got = append(got, string(p[:1]))
		return nil
	})
	if _, ok := err.(*CorruptError); !ok {
		t.Fatalf("got %v, want *CorruptError", err)
	}
	for _, s := range got {
		if s == "a" {
			t.Fatal("replay delivered the corrupted record")
		}
	}
}

func TestCheckpointCommitReplayFromWatermark(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{SegmentSize: 64})
	for i := 0; i < 4; i++ {
		if _, err := l.Append(bytes.Repeat([]byte{byte('a' + i)}, 40)); err != nil {
			t.Fatal(err)
		}
	}
	stage, err := l.BeginCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(stage, "state.json"), []byte(`{"n":4}`), 0o644); err != nil {
		t.Fatal(err)
	}
	wm := l.Watermark()
	if err := l.CommitCheckpoint(stage, wm); err != nil {
		t.Fatal(err)
	}
	// Two records after the checkpoint.
	l.Append([]byte("tail-1"))
	l.Append([]byte("tail-2"))
	dirName, gotWM, ok, err := l.CurrentCheckpoint()
	if err != nil || !ok {
		t.Fatalf("CurrentCheckpoint: %v ok=%v", err, ok)
	}
	if gotWM != wm {
		t.Fatalf("watermark %v, want %v", gotWM, wm)
	}
	if _, err := os.Stat(filepath.Join(dirName, "state.json")); err != nil {
		t.Fatalf("checkpoint state file: %v", err)
	}
	got := collect(t, l, wm)
	if len(got) != 2 || got[0] != "tail-1" || got[1] != "tail-2" {
		t.Fatalf("tail replay: %q", got)
	}
	l.Close()
	// Reopen: segments below the watermark are gone, tail replays.
	l2 := mustOpen(t, dir, Options{SegmentSize: 64})
	defer l2.Close()
	seqs, _ := segments(dir)
	for _, seq := range seqs {
		if seq < wm.Seg {
			t.Fatalf("segment %d below watermark %v survived GC", seq, wm)
		}
	}
	_, gotWM2, ok, err := l2.CurrentCheckpoint()
	if err != nil || !ok || gotWM2 != wm {
		t.Fatalf("after reopen: wm=%v ok=%v err=%v", gotWM2, ok, err)
	}
	if got := collect(t, l2, wm); len(got) != 2 {
		t.Fatalf("tail replay after reopen: %q", got)
	}
}

func TestCheckpointCrashDebrisCollected(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	l.Append([]byte("r1"))
	// A crashed staging directory and a committed-but-unreferenced
	// checkpoint (crash between rename and CURRENT flip).
	if err := os.MkdirAll(filepath.Join(dir, ckptStaging+"zzz"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(dir, ckptName(9)), 0o755); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l2 := mustOpen(t, dir, Options{})
	defer l2.Close()
	if _, err := os.Stat(filepath.Join(dir, ckptStaging+"zzz")); !os.IsNotExist(err) {
		t.Fatal("staging debris survived Open")
	}
	if _, err := os.Stat(filepath.Join(dir, ckptName(9))); !os.IsNotExist(err) {
		t.Fatal("unreferenced checkpoint survived Open")
	}
	if got := collect(t, l2, Watermark{}); len(got) != 1 {
		t.Fatalf("replay: %q", got)
	}
}

func TestCorruptCurrentPointer(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	l.Append([]byte("r1"))
	stage, _ := l.BeginCheckpoint()
	os.WriteFile(filepath.Join(stage, "state.json"), []byte("{}"), 0o644)
	if err := l.CommitCheckpoint(stage, l.Watermark()); err != nil {
		t.Fatal(err)
	}
	l.Close()
	if err := os.WriteFile(filepath.Join(dir, currentFile), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	l2 := mustOpen(t, dir, Options{}) // Open leaves damage in place for inspection
	defer l2.Close()
	_, _, _, err := l2.CurrentCheckpoint()
	if _, ok := err.(*CorruptError); !ok {
		t.Fatalf("got %v, want *CorruptError for corrupt CURRENT", err)
	}
}

func TestSyncPolicies(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{Policy: SyncAlways})
	l.Append([]byte("a"))
	l.Append([]byte("b"))
	if s := l.Stats(); s.Syncs != 2 {
		t.Fatalf("SyncAlways: %d syncs after 2 appends", s.Syncs)
	}
	l.Close()

	dir2 := t.TempDir()
	l2 := mustOpen(t, dir2, Options{Policy: SyncOnCheckpoint})
	l2.Append([]byte("a"))
	l2.Append([]byte("b"))
	if s := l2.Stats(); s.Syncs != 0 {
		t.Fatalf("SyncOnCheckpoint: %d syncs on append", s.Syncs)
	}
	// Close commits the tail regardless of policy.
	l2.Close()
	l3 := mustOpen(t, dir2, Options{})
	defer l3.Close()
	if got := collect(t, l3, Watermark{}); len(got) != 2 {
		t.Fatalf("tail lost under SyncOnCheckpoint + Close: %q", got)
	}
}

func TestAppendValidation(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	if _, err := l.Append(nil); err == nil {
		t.Fatal("empty record accepted")
	}
	l.Close()
	if _, err := l.Append([]byte("x")); err != ErrClosed {
		t.Fatalf("append after close: %v", err)
	}
	if err := l.Sync(); err != ErrClosed {
		t.Fatalf("sync after close: %v", err)
	}
}

func TestFrameChecksum(t *testing.T) {
	// The framing constants written by Append are what scanSegment
	// verifies: lock the format (little-endian length, CRC32C).
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	payload := []byte("check-me")
	l.Append(payload)
	l.Close()
	data, _ := os.ReadFile(filepath.Join(dir, segName(1)))
	if !bytes.Equal(data[:headerLen], magic[:]) {
		t.Fatal("bad segment magic")
	}
	if got := binary.LittleEndian.Uint32(data[headerLen : headerLen+4]); got != uint32(len(payload)) {
		t.Fatalf("length field %d, want %d", got, len(payload))
	}
	wantSum := crc32.Checksum(payload, castagnoli)
	if got := binary.LittleEndian.Uint32(data[headerLen+4 : headerLen+8]); got != wantSum {
		t.Fatalf("crc field %x, want %x", got, wantSum)
	}
}

// BenchmarkWALAppend measures the append path: framing, checksum and
// buffered write, without per-record fsync (SyncOnCheckpoint), for a
// 128-byte payload.
func BenchmarkWALAppend(b *testing.B) {
	dir := b.TempDir()
	l, err := Open(dir, Options{Policy: SyncOnCheckpoint, SegmentSize: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	payload := bytes.Repeat([]byte{'p'}, 128)
	b.SetBytes(int64(len(payload) + recHeaderLen))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Append(payload); err != nil {
			b.Fatal(err)
		}
	}
}
